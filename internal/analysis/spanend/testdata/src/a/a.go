// Package a exercises the spanend analyzer.
package a

import (
	"context"

	"example/internal/obs"
)

type job struct {
	span *obs.Span
}

func unended(ctx context.Context) {
	ctx, span := obs.StartSpan(ctx, "work") // want `span "span" from StartSpan is never Ended`
	span.SetAttr("k", "v")
	_ = ctx
}

func discardedSpan(ctx context.Context) context.Context {
	ctx, _ = obs.StartSpan(ctx, "work") // want `span from StartSpan is assigned to _`
	return ctx
}

func methodFormUnended(t *obs.Tracer) {
	span := t.StartSpan("work") // want `span "span" from StartSpan is never Ended`
	span.SetAttr("k", "v")
}

// Negative cases.

func deferredEnd(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "work")
	defer span.End()
}

func directEnd(t *obs.Tracer) {
	span := t.StartSpan("work")
	span.End()
}

func storedForWatcher(ctx context.Context, j *job) {
	_, j.span = obs.StartSpan(ctx, "cell")
}

func returnedToCaller(ctx context.Context) (context.Context, *obs.Span) {
	return obs.StartSpan(ctx, "outer")
}

func endedInClosure(ctx context.Context) func() {
	_, span := obs.StartSpan(ctx, "bg")
	return func() { span.End() }
}

func allowedProcessSpan(ctx context.Context) {
	//lint:allow spanend process-lifetime root span, ended by exit hook
	_, span := obs.StartSpan(ctx, "root")
	span.SetAttr("k", "v")
}
