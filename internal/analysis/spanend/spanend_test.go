package spanend_test

import (
	"testing"

	"imagebench/internal/analysis/analysistest"
	"imagebench/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata", spanend.Analyzer, "a")
}
