// Package spanend keeps the dual-clock tracing honest: every span
// opened with obs.StartSpan (or a StartSpan method) must have a
// reachable End, or escape to an owner that ends it. An unended span
// never flushes its wall window, skews the stage-partition invariant
// (stage spans must sum to the run's virtual seconds), and pins its
// subtree in the tracer forever.
package spanend

import (
	"go/ast"
	"go/types"

	"imagebench/internal/analysis"
)

// Analyzer is the spanend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "every obs.StartSpan must have a reachable span.End (or the span must escape to an owner that ends it)",
	Run:  analysis.MustConsume{Producer: producer, SkipTestFiles: true}.Run,
}

// obsPkg is the path suffix of the tracing package.
const obsPkg = "internal/obs"

func producer(pass *analysis.Pass, call *ast.CallExpr) (analysis.Tracked, bool) {
	fn := pass.Callee(call)
	if fn == nil || fn.Name() != "StartSpan" {
		return analysis.Tracked{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return analysis.Tracked{}, false
	}
	// Package function obs.StartSpan or any method named StartSpan —
	// either way the tracked result is the *obs.Span.
	for i := 0; i < sig.Results().Len(); i++ {
		if isSpan(sig.Results().At(i).Type()) {
			return analysis.Tracked{
				Call:        "StartSpan",
				What:        "span",
				ResultIndex: i,
				Consumers:   []string{"End"},
				Verb:        "Ended",
				Fix:         "add span.End() (usually deferred) or store the span where a watcher ends it",
			}, true
		}
	}
	return analysis.Tracked{}, false
}

func isSpan(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil &&
		analysis.PathHasSuffix(obj.Pkg().Path(), obsPkg)
}
