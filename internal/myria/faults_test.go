package myria

import (
	"fmt"
	"testing"
	"time"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

func stageObjects(store *objstore.Store, n int) {
	for i := 0; i < n; i++ {
		store.Put(fmt.Sprintf("in/%03d", i), nil, 1<<20)
	}
}

func decodeObj(obj objstore.Object) []Tuple {
	return []Tuple{{Key: obj.Key, Value: obj.Key, Size: obj.Size()}}
}

// runProgram is one full MyriaL program: ingest + a slow UDF + collect.
func runProgram(cl *cluster.Cluster, store *objstore.Store, out *[]Tuple) error {
	e := New(cl, store, nil, Config{})
	rel, err := e.Ingest("R", "in/", decodeObj)
	if err != nil {
		return err
	}
	q := e.NewQuery()
	ap := q.Apply(rel, PyUDF{Name: "slow", Op: cost.Denoise, F: func(t Tuple) []Tuple {
		return []Tuple{{Key: t.Key, Value: t.Value.(string) + "!", Size: t.Size}}
	}})
	tuples, _ := q.Collect(ap)
	if _, err := q.Finish(); err != nil {
		return err
	}
	*out = tuples
	return nil
}

// TestNodeDeathRestartsWholeQuery: Myria has no mid-query recovery — a
// worker node dying mid-program aborts it, and RunWithRestart re-runs
// the whole program (startup, ingest, every operator) on the survivors.
func TestNodeDeathRestartsWholeQuery(t *testing.T) {
	mk := func() (*cluster.Cluster, *objstore.Store) {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4
		cl := cluster.New(cfg)
		store := objstore.New()
		stageObjects(store, 16)
		return cl, store
	}
	bcl, bstore := mk()
	var want []Tuple
	if err := runProgram(bcl, bstore, &want); err != nil {
		t.Fatal(err)
	}
	baseline := vtime.Duration(bcl.Makespan())

	fcl, fstore := mk()
	// Startup is 4s; ingest and the UDF run in ~4–4.5s, so a kill at
	// 4.3s lands mid-program.
	killAt := vtime.Time(4300 * time.Millisecond)
	if err := fcl.Inject(cluster.Fault{Kind: cluster.FaultKill, Node: 1, At: killAt}); err != nil {
		t.Fatal(err)
	}
	var got []Tuple
	err := RunWithRestart(fcl, fcl.Kills(), func() error {
		return runProgram(fcl, fstore, &got)
	})
	if err != nil {
		t.Fatalf("restart did not recover: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("restarted query returned %d tuples, want %d", len(got), len(want))
	}
	recovered := vtime.Duration(fcl.Makespan())
	// Full restart: the wasted first attempt plus a complete re-run on
	// 3 of 4 nodes — necessarily more than kill time + baseline.
	if min := vtime.Duration(killAt) + baseline; recovered <= min {
		t.Errorf("restart too cheap for a full re-run: makespan %v, want > %v", recovered, min)
	}
	if fcl.Floor() < killAt {
		t.Errorf("floor %v not advanced to the failure at %v", fcl.Floor(), killAt)
	}
}
