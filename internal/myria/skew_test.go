package myria

import (
	"fmt"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
)

// Section 5.3.2: skewed data growth (6× on some workers in the astronomy
// pipeline) pushes pipelined execution into OOM, while materialized
// execution bounds memory to one operator at a time and survives.

// skewEngine builds an engine whose per-node memory is small enough that
// one skewed partition overflows it.
func skewEngine(t *testing.T, mode MemoryMode) *Engine {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.MemPerNode = 1 << 30 // 1 GB per node
	cl := cluster.New(cfg)
	return New(cl, objstore.New(), nil, Config{WorkersPerNode: 4, Mode: mode})
}

// skewedTuples returns tuples that all hash to one worker (same key):
// total bytes exceed a single node's memory though the cluster as a
// whole has plenty.
func skewedTuples(n int, size int64) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{Key: "hot-patch", Value: i, Size: size}
	}
	return out
}

func TestPipelinedSkewOOM(t *testing.T) {
	e := skewEngine(t, Pipelined)
	q := e.NewQuery()
	rel := e.RelationFromTuples(q, "skewed", skewedTuples(24, 128<<20)) // 3 GB on one worker
	out := q.Apply(rel, PyUDF{Name: "grow", Op: cost.CoaddIter, F: func(tp Tuple) []Tuple {
		return []Tuple{tp}
	}})
	_ = out
	if _, err := q.Finish(); err == nil {
		t.Fatal("pipelined query over skewed data should fail with OOM")
	} else if got := err.Error(); got == "" || !contains(got, "out of memory") {
		t.Fatalf("error should mention OOM: %v", err)
	}
}

func TestMaterializedSurvivesSkew(t *testing.T) {
	e := skewEngine(t, Materialized)
	q := e.NewQuery()
	rel := e.RelationFromTuples(q, "skewed", skewedTuples(24, 128<<20))
	out := q.Apply(rel, PyUDF{Name: "grow", Op: cost.CoaddIter, F: func(tp Tuple) []Tuple {
		return []Tuple{tp}
	}})
	if out.Count() != 24 {
		t.Fatalf("got %d tuples, want 24", out.Count())
	}
	if _, err := q.Finish(); err != nil {
		t.Fatalf("materialized mode should survive skew, got %v", err)
	}
}

func TestBalancedPipelinedFits(t *testing.T) {
	// The same total bytes spread across distinct keys fit in pipelined
	// mode: the failure above is skew, not volume.
	e := skewEngine(t, Pipelined)
	q := e.NewQuery()
	tuples := make([]Tuple, 24)
	for i := range tuples {
		tuples[i] = Tuple{Key: fmt.Sprintf("patch-%02d", i), Value: i, Size: 128 << 20}
	}
	rel := e.RelationFromTuples(q, "balanced", tuples)
	q.Apply(rel, PyUDF{Name: "grow", Op: cost.CoaddIter, F: func(tp Tuple) []Tuple {
		return []Tuple{tp}
	}})
	if _, err := q.Finish(); err != nil {
		t.Fatalf("balanced pipelined query should fit, got %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
