// Package myria implements a Myria-like shared-nothing parallel DBMS:
// relations hash-partitioned across per-node worker processes backed by a
// PostgreSQL-style local store, iterator-style operators that pipeline
// tuples without materializing, exchange (shuffle/broadcast) operators,
// and Python user-defined functions over BLOB attributes.
//
// Properties the paper's results hinge on, implemented explicitly:
//
//   - Ingest stores tuples in node-local storage; scans with predicates
//     push selection down to the local store, skipping the Python
//     boundary entirely (Fig 12a: fastest filter).
//   - Ingest reads a CSV list of object keys directly — no master-side
//     bucket enumeration — making ingest setup faster than Spark (Fig 11).
//   - The number of worker processes per node is a tuning knob; beyond
//     ~half the cores, workers contend for memory bandwidth and CPU and
//     per-worker efficiency drops (Fig 13: 4 workers per 8-core node wins).
//   - Three memory-management strategies (Section 5.3.2 / Fig 15):
//     pipelined execution (fastest, fails with OOM under pressure),
//     per-operator materialization to disk, and splitting the work into
//     multiple queries over input chunks.
package myria

import (
	"fmt"
	"hash/fnv"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

// Tuple is one relational tuple: a string key (the non-BLOB attributes,
// e.g. subject and image IDs) and a BLOB value (a serialized array),
// annotated with the paper-scale size of the BLOB.
type Tuple struct {
	Key   string
	Value any
	Size  int64
}

// MemoryMode selects the engine's memory-management strategy (Fig 15).
type MemoryMode int

const (
	// Pipelined streams tuples between operators without materializing.
	// Fastest, but every live intermediate occupies memory at once and
	// queries fail with OOM under pressure.
	Pipelined MemoryMode = iota
	// Materialized writes each operator's output to local disk and reads
	// it back, bounding memory to one operator at a time.
	Materialized
	// MultiQuery is Materialized plus the caller splitting the input into
	// chunks executed as separate queries (see RunChunked helpers in the
	// pipelines); each chunk pays query startup again.
	MultiQuery
)

func (m MemoryMode) String() string {
	switch m {
	case Pipelined:
		return "pipelined"
	case Materialized:
		return "materialized"
	case MultiQuery:
		return "multi-query"
	}
	return "mode?"
}

// Config tunes the engine.
type Config struct {
	WorkersPerNode int        // Myria worker processes per machine
	Mode           MemoryMode // memory-management strategy
}

// DefaultConfig returns the paper's tuned setting: 4 workers per node,
// pipelined execution.
func DefaultConfig() Config { return Config{WorkersPerNode: 4, Mode: Pipelined} }

// Engine is a Myria deployment on a simulated cluster.
type Engine struct {
	cl      *cluster.Cluster
	model   *cost.Model
	store   *objstore.Store
	cfg     Config
	startup *cluster.Handle
	catalog map[string]*Relation
	queries int
	// nodes are the machines hosting worker processes: the cluster
	// nodes alive when the engine was deployed. A restart after a node
	// kill (see RunWithRestart) deploys a fresh engine that places
	// workers only on the survivors.
	nodes []int
}

// New deploys Myria on cl. A nil model uses cost.Default().
func New(cl *cluster.Cluster, store *objstore.Store, model *cost.Model, cfg Config) *Engine {
	if model == nil {
		model = cost.Default()
	}
	if cfg.WorkersPerNode <= 0 {
		cfg.WorkersPerNode = DefaultConfig().WorkersPerNode
	}
	e := &Engine{cl: cl, model: model, store: store, cfg: cfg, catalog: make(map[string]*Relation),
		nodes: cl.AliveNodes()}
	e.startup = cl.Submit(0, nil, model.Startup[cost.Myria], nil)
	return e
}

// Cluster returns the underlying simulated cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Workers returns the total number of Myria worker processes.
func (e *Engine) Workers() int { return len(e.nodes) * e.cfg.WorkersPerNode }

// nodeOf maps a logical worker to its machine.
func (e *Engine) nodeOf(worker int) int { return e.nodes[worker/e.cfg.WorkersPerNode] }

// workerSpeed returns one Myria worker process's effective speed in
// core-equivalents, as a function of how many workers share an 8-core
// node. Myria workers are internally multi-threaded, so few workers still
// use several cores each, but a single process cannot drive the whole
// machine; beyond 4 workers they contend for memory bandwidth and disk
// and aggregate throughput declines. The curve reproduces the paper's
// Fig 13: node capacity peaks at 4 workers (3+5.5+8+6 core-equivalents
// for 1, 2, 4, 8 workers).
func (e *Engine) workerSpeed() float64 {
	switch {
	case e.cfg.WorkersPerNode <= 1:
		return 3.0
	case e.cfg.WorkersPerNode == 2:
		return 2.75
	case e.cfg.WorkersPerNode <= 4:
		return 8.0 / float64(e.cfg.WorkersPerNode)
	default:
		return 6.0 / float64(e.cfg.WorkersPerNode)
	}
}

// work converts a one-core modeled duration into this deployment's
// per-worker duration.
func (e *Engine) work(d vtime.Duration) vtime.Duration {
	return vtime.Duration(float64(d) / e.workerSpeed())
}

// Relation is a hash-partitioned distributed relation. Materialized
// relations live either in worker memory (query intermediates) or in the
// node-local store (ingested base tables, onDisk=true).
type Relation struct {
	Name   string
	parts  [][]Tuple // one slice per logical worker
	ready  []*cluster.Handle
	onDisk bool
	eng    *Engine
}

// Tuples returns all tuples across workers (worker order, then insertion
// order). It is a test/inspection helper, not a query operator.
func (r *Relation) Tuples() []Tuple {
	var out []Tuple
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the total number of tuples.
func (r *Relation) Count() int {
	n := 0
	for _, p := range r.parts {
		n += len(p)
	}
	return n
}

// Bytes returns total paper-scale BLOB bytes.
func (r *Relation) Bytes() int64 {
	var n int64
	for _, p := range r.parts {
		for _, t := range p {
			n += t.Size
		}
	}
	return n
}

// partBytes returns the BLOB bytes held by one worker.
func (r *Relation) partBytes(w int) int64 {
	var n int64
	for _, t := range r.parts[w] {
		n += t.Size
	}
	return n
}

func (e *Engine) hashWorker(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(e.Workers()))
}

// Ingest downloads the objects under prefix from the object store in
// parallel across all workers (Myria reads a CSV list of files — no
// master-side enumeration), decodes them, and stores the resulting tuples
// in node-local storage under name. The decode function runs per object.
func (e *Engine) Ingest(name, prefix string, decode func(objstore.Object) []Tuple) (*Relation, error) {
	keys := e.store.List(prefix)
	if len(keys) == 0 {
		return nil, fmt.Errorf("myria: no objects under %q", prefix)
	}
	rel := &Relation{Name: name, eng: e, onDisk: true,
		parts: make([][]Tuple, e.Workers()),
		ready: make([]*cluster.Handle, e.Workers()),
	}
	perWorker := make([][]string, e.Workers())
	for i, k := range keys {
		perWorker[i%e.Workers()] = append(perWorker[i%e.Workers()], k)
	}
	next := 0
	for w := 0; w < e.Workers(); w++ {
		node := e.nodeOf(w)
		var bytes int64
		for _, k := range perWorker[w] {
			obj, err := e.store.Get(k)
			if err != nil {
				return nil, err
			}
			bytes += obj.Size()
			tuples := decode(obj)
			// Distribute tuples round-robin (Myria's RoundRobin
			// partitioning) so base tables are balanced; exchanges later
			// hash-partition by grouping key as usual. Ingest traffic is
			// accounted below.
			for _, t := range tuples {
				rel.parts[next%e.Workers()] = append(rel.parts[next%e.Workers()], t)
				next++
			}
		}
		dl := e.model.S3Fetch(len(perWorker[w]), bytes) + e.model.FormatTime(bytes)
		fetch := e.cl.Submit(node, []*cluster.Handle{e.startup}, e.work(e.model.Jitter(name+keys0(perWorker[w]), dl)), nil)
		// Write to node-local PostgreSQL.
		wr := e.cl.DiskWrite(node, bytes, fetch)
		rel.ready[w] = wr
	}
	// Ingest shuffle traffic: on average (W-1)/W of the bytes move.
	total := rel.Bytes()
	if e.Workers() > 1 {
		moved := total * int64(e.Workers()-1) / int64(e.Workers())
		per := moved / int64(len(e.nodes))
		for i, n := range e.nodes {
			rel.ready = append(rel.ready, e.cl.Transfer(n, e.nodes[(i+1)%len(e.nodes)], per, e.startup))
		}
	}
	// A node dying during ingest aborts the load: the coordinator sees
	// the worker failure and reports it (the caller restarts from
	// scratch, as Myria offers no mid-query recovery).
	for _, h := range rel.ready {
		if h.Err != nil {
			return nil, fmt.Errorf("myria: ingest %q: %w", name, h.Err)
		}
	}
	e.catalog[name] = rel
	return rel, nil
}

func keys0(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// RelationFromTuples registers an in-memory relation built from existing
// tuples (e.g. the materialized results of earlier chunk queries),
// hash-partitioned by key. Its partitions become available when the query
// starts; no ingest cost is charged beyond the hash-partition shuffle that
// already happened when the tuples were produced.
func (e *Engine) RelationFromTuples(q *Query, name string, tuples []Tuple) *Relation {
	rel := &Relation{Name: name, eng: e,
		parts: make([][]Tuple, e.Workers()),
		ready: make([]*cluster.Handle, e.Workers()),
	}
	for _, t := range tuples {
		w := e.hashWorker(t.Key)
		rel.parts[w] = append(rel.parts[w], t)
	}
	for w := range rel.ready {
		rel.ready[w] = q.start
	}
	e.catalog[name] = rel
	return rel
}

// Lookup returns an ingested relation by name.
func (e *Engine) Lookup(name string) (*Relation, error) {
	r, ok := e.catalog[name]
	if !ok {
		return nil, fmt.Errorf("myria: unknown relation %q", name)
	}
	return r, nil
}
