package myria

import (
	"errors"
	"fmt"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
)

func engine(nodes, workers int, mode MemoryMode) (*Engine, *cluster.Cluster, *objstore.Store) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cl := cluster.New(cfg)
	store := objstore.New()
	return New(cl, store, nil, Config{WorkersPerNode: workers, Mode: mode}), cl, store
}

func stage(store *objstore.Store, n int) {
	for i := 0; i < n; i++ {
		store.Put(fmt.Sprintf("in/%03d", i), nil, 1<<20)
	}
}

func decodeOne(obj objstore.Object) []Tuple {
	return []Tuple{{Key: obj.Key, Value: obj.Key, Size: obj.Size()}}
}

func TestIngestBalanced(t *testing.T) {
	e, _, store := engine(2, 4, Pipelined)
	stage(store, 16)
	rel, err := e.Ingest("R", "in/", decodeOne)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Count() != 16 {
		t.Fatalf("count %d", rel.Count())
	}
	// Round-robin placement: every worker holds exactly 2 tuples.
	for w := 0; w < e.Workers(); w++ {
		if len(rel.parts[w]) != 2 {
			t.Errorf("worker %d holds %d tuples", w, len(rel.parts[w]))
		}
	}
	if _, err := e.Lookup("R"); err != nil {
		t.Error("catalog lookup failed")
	}
	if _, err := e.Ingest("S", "nothing/", decodeOne); err == nil {
		t.Error("empty prefix accepted")
	}
}

func TestScanWherePushdown(t *testing.T) {
	e, _, store := engine(2, 2, Pipelined)
	stage(store, 10)
	rel, err := e.Ingest("R", "in/", decodeOne)
	if err != nil {
		t.Fatal(err)
	}
	q := e.NewQuery()
	sel := q.ScanWhere(rel, func(tp Tuple) bool { return tp.Key >= "in/005" })
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	if sel.Count() != 5 {
		t.Errorf("selected %d, want 5", sel.Count())
	}
}

func TestApplyAndGroupBy(t *testing.T) {
	e, _, store := engine(2, 2, Pipelined)
	stage(store, 8)
	rel, _ := e.Ingest("R", "in/", decodeOne)
	q := e.NewQuery()
	scan := q.Scan(rel)
	doubled := q.Apply(scan, PyUDF{Name: "dup", Op: cost.Filter, F: func(tp Tuple) []Tuple {
		return []Tuple{tp, tp}
	}})
	counts := q.GroupByApply(doubled,
		func(Tuple) string { return "all" },
		PyUDA{Name: "count", Op: cost.Mean, F: func(key string, group []Tuple) []Tuple {
			return []Tuple{{Key: key, Value: len(group), Size: 1}}
		}})
	tuples, _ := q.Collect(counts)
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0].Value.(int) != 16 {
		t.Errorf("group result %+v", tuples)
	}
}

func TestBroadcastJoinPrefixMatch(t *testing.T) {
	e, _, store := engine(2, 2, Pipelined)
	store.Put("left/a1", nil, 1<<20)
	store.Put("left/a2", nil, 1<<20)
	left, _ := e.Ingest("L", "left/", func(obj objstore.Object) []Tuple {
		return []Tuple{{Key: "s0/" + obj.Key, Value: obj.Key, Size: obj.Size()}}
	})
	q := e.NewQuery()
	right := e.RelationFromTuples(q, "Mask", []Tuple{{Key: "s0", Value: "MASK", Size: 1}})
	joined := q.BroadcastJoin("j", q.Scan(left), right, func(l Tuple, rs []Tuple) []Tuple {
		if len(rs) != 1 {
			return nil
		}
		return []Tuple{{Key: l.Key, Value: rs[0].Value, Size: l.Size}}
	})
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	if joined.Count() != 2 {
		t.Errorf("joined %d, want 2", joined.Count())
	}
}

func TestPipelinedOOMFailsQuery(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cfg.MemPerNode = 4 << 20
	cl := cluster.New(cfg)
	store := objstore.New()
	e := New(cl, store, nil, Config{WorkersPerNode: 2, Mode: Pipelined})
	stage(store, 16) // 16 MB of intermediates vs 4 MB nodes
	rel, _ := e.Ingest("R", "in/", decodeOne)
	q := e.NewQuery()
	q.Scan(rel)
	_, err := q.Finish()
	if !errors.Is(err, cluster.ErrOOM) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestMaterializedSurvivesPressure(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cfg.MemPerNode = 4 << 20
	cl := cluster.New(cfg)
	store := objstore.New()
	e := New(cl, store, nil, Config{WorkersPerNode: 2, Mode: Materialized})
	stage(store, 16)
	rel, _ := e.Ingest("R", "in/", decodeOne)
	q := e.NewQuery()
	q.Scan(rel)
	if _, err := q.Finish(); err != nil {
		t.Fatalf("materialized mode should survive: %v", err)
	}
}

func TestWorkerSpeedCurve(t *testing.T) {
	// Node capacity (workers × speed) peaks at 4 workers.
	cap := func(w int) float64 {
		e, _, _ := engine(1, w, Pipelined)
		return float64(w) * e.workerSpeed()
	}
	if !(cap(4) > cap(2) && cap(4) > cap(8) && cap(2) > cap(1)) {
		t.Errorf("capacity curve: 1→%v 2→%v 4→%v 8→%v", cap(1), cap(2), cap(4), cap(8))
	}
}
