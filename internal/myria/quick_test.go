package myria

import (
	"fmt"
	"testing"
	"testing/quick"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
)

func quickEngine(nodes, workers int) *Engine {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	return New(cluster.New(cfg), objstore.New(), nil, Config{WorkersPerNode: workers})
}

// Property: a shuffle preserves the multiset of tuples, for arbitrary
// key distributions and worker counts.
func TestShufflePreservesTuplesProperty(t *testing.T) {
	f := func(keys []uint8, workers8 uint8) bool {
		e := quickEngine(2, int(workers8%4)+1)
		q := e.NewQuery()
		tuples := make([]Tuple, len(keys))
		counts := make(map[string]int)
		for i, k := range keys {
			key := fmt.Sprintf("g%d", k%7)
			tuples[i] = Tuple{Key: key, Value: i, Size: 1 << 10}
			counts[key]++
		}
		rel := e.RelationFromTuples(q, "xs", tuples)
		sh := q.Shuffle(rel, func(tp Tuple) string { return tp.Key })
		if _, err := q.Finish(); err != nil {
			return false
		}
		got := make(map[string]int)
		for _, tp := range sh.Tuples() {
			got[tp.Key]++
		}
		if len(got) != len(counts) {
			return false
		}
		for k, n := range counts {
			if got[k] != n {
				return false
			}
		}
		return sh.Count() == len(tuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a shuffle, every tuple of a key lives on that key's
// hash-home worker (co-location, the invariant GroupByApply relies on).
func TestShuffleColocatesKeysProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		e := quickEngine(3, 2)
		q := e.NewQuery()
		tuples := make([]Tuple, len(keys))
		for i, k := range keys {
			tuples[i] = Tuple{Key: fmt.Sprintf("g%d", k%5), Value: i, Size: 64}
		}
		rel := e.RelationFromTuples(q, "xs", tuples)
		sh := q.Shuffle(rel, func(tp Tuple) string { return tp.Key })
		if _, err := q.Finish(); err != nil {
			return false
		}
		for w := 0; w < e.Workers(); w++ {
			for _, tp := range sh.parts[w] {
				if e.hashWorker(tp.Key) != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: GroupByApply sees every group exactly once with all its
// members.
func TestGroupByApplyCompleteGroupsProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		if len(keys) == 0 {
			return true
		}
		e := quickEngine(2, 2)
		q := e.NewQuery()
		tuples := make([]Tuple, len(keys))
		want := make(map[string]int)
		for i, k := range keys {
			key := fmt.Sprintf("g%d", k%4)
			tuples[i] = Tuple{Key: key, Value: 1, Size: 32}
			want[key]++
		}
		rel := e.RelationFromTuples(q, "xs", tuples)
		out := q.GroupByApply(rel, func(tp Tuple) string { return tp.Key },
			PyUDA{Name: "count", Op: cost.Mean, F: func(key string, group []Tuple) []Tuple {
				return []Tuple{{Key: key, Value: len(group), Size: 8}}
			}})
		if _, err := q.Finish(); err != nil {
			return false
		}
		got := make(map[string]int)
		for _, tp := range out.Tuples() {
			got[tp.Key] = tp.Value.(int)
		}
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
