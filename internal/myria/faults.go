package myria

import (
	"imagebench/internal/cluster"
)

// RunWithRestart executes a whole MyriaL program — the run closure
// should deploy a fresh Engine and run its queries — restarting it from
// scratch when a worker node dies mid-query. This is the paper's
// fault-tolerance finding for Myria: there is no mid-query recovery, so
// the coordinator aborts the failed query and the program is resubmitted,
// paying startup, ingest, and all completed work again on the surviving
// nodes. The scheduling floor is advanced to the failure time first, so
// the restart cannot use idle cluster capacity from before the kill, and
// the fresh Engine (which reads cluster.AliveNodes) places workers only
// on survivors.
//
// maxRestarts bounds the retries; cl.Kills() is the natural choice (each
// genuine restart consumes one scheduled kill). Errors that are not node
// failures are returned unchanged.
func RunWithRestart(cl *cluster.Cluster, maxRestarts int, run func() error) error {
	_, err := cl.RerunAfterKills(maxRestarts, run)
	return err
}
