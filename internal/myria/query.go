package myria

import (
	"fmt"
	"sort"
	"time"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/vtime"
)

// PyUDF is a registered Python user-defined function (or aggregate):
// real computation in F, modeled cost from Op, plus the Python-process
// IPC tax on the BLOB bytes crossing the boundary in each direction.
type PyUDF struct {
	Name string
	Op   cost.Op
	F    func(Tuple) []Tuple
}

// PyUDA is a Python user-defined aggregate applied to the grouped tuples
// of one key.
type PyUDA struct {
	Name string
	Op   cost.Op
	F    func(key string, group []Tuple) []Tuple
}

// Query is one MyriaL query executing against the engine. Operators are
// applied eagerly in submission order; the memory mode governs how
// intermediates flow between them.
type Query struct {
	eng   *Engine
	err   error
	start *cluster.Handle // query submission; every operator waits for it
	held  []heldAlloc     // pipelined-mode live intermediates
	done  []*cluster.Handle
}

type heldAlloc struct {
	node  int
	bytes int64
}

// NewQuery starts a query after the given dependencies (queries in a
// MyriaL program run sequentially: pass the previous query's Finish
// handle). Each query pays a small submission cost on the coordinator
// (MultiQuery mode pays it once per chunk).
func (e *Engine) NewQuery(after ...*cluster.Handle) *Query {
	e.queries++
	deps := append([]*cluster.Handle{e.startup}, after...)
	h := e.cl.Submit(0, deps, 100*time.Millisecond, nil)
	return &Query{eng: e, start: h, done: []*cluster.Handle{h}}
}

// Err returns the first error the query encountered (e.g. OOM in
// pipelined mode).
func (q *Query) Err() error { return q.err }

// note records an operator-task failure — a worker node dying mid-query
// — so the query aborts with it: Myria has no mid-query recovery; the
// coordinator reports the failed query and a restart (RunWithRestart)
// re-executes it from scratch on the surviving workers.
func (q *Query) note(h *cluster.Handle) *cluster.Handle {
	if h.Err != nil && q.err == nil {
		q.err = fmt.Errorf("myria: query aborted: %w", h.Err)
	}
	return h
}

// Finish releases pipelined-mode memory and returns a handle for the
// completion of the whole query.
func (q *Query) Finish() (*cluster.Handle, error) {
	for _, a := range q.held {
		q.eng.cl.Mem(a.node).Release(a.bytes)
	}
	q.held = nil
	if q.err != nil {
		return nil, q.err
	}
	return q.eng.cl.Barrier(q.done...), nil
}

// reserve models an intermediate relation coming alive. In pipelined mode
// the memory stays reserved until Finish (all operators run at once); in
// materialized modes each operator's output is written to and re-read
// from disk instead.
func (q *Query) reserve(rel *Relation) {
	if q.err != nil {
		return
	}
	e := q.eng
	switch e.cfg.Mode {
	case Pipelined:
		perNode := make(map[int]int64)
		for w := range rel.parts {
			perNode[e.nodeOf(w)] += rel.partBytes(w)
		}
		for node, bytes := range perNode {
			if err := e.cl.Mem(node).Alloc(bytes); err != nil {
				q.err = fmt.Errorf("myria: query failed: %w", err)
				return
			}
			q.held = append(q.held, heldAlloc{node, bytes})
		}
	case Materialized, MultiQuery:
		for w := range rel.parts {
			b := rel.partBytes(w)
			node := e.nodeOf(w)
			wr := q.note(e.cl.DiskWrite(node, b, rel.ready[w]))
			rel.ready[w] = q.note(e.cl.DiskRead(node, b, wr))
		}
	}
}

// track records operator completion handles toward the query barrier.
func (q *Query) track(rel *Relation) {
	q.done = append(q.done, rel.ready...)
}

// Scan reads an ingested relation from node-local storage into the
// query's pipeline.
func (q *Query) Scan(rel *Relation) *Relation {
	return q.scanWhere(rel, nil, "scan:"+rel.Name)
}

// ScanWhere reads rel with a predicate pushed down into the node-local
// store: only matching tuples enter the pipeline, and no Python boundary
// is crossed (Fig 12a).
func (q *Query) ScanWhere(rel *Relation, pred func(Tuple) bool) *Relation {
	return q.scanWhere(rel, pred, "scanwhere:"+rel.Name)
}

func (q *Query) scanWhere(rel *Relation, pred func(Tuple) bool, name string) *Relation {
	if q.err != nil {
		return emptyLike(q.eng, name)
	}
	e := q.eng
	out := &Relation{Name: name, eng: e,
		parts: make([][]Tuple, e.Workers()),
		ready: make([]*cluster.Handle, e.Workers()),
	}
	for w := range rel.parts {
		node := e.nodeOf(w)
		var kept []Tuple
		var keptBytes int64
		for _, t := range rel.parts[w] {
			if pred == nil || pred(t) {
				kept = append(kept, t)
				keptBytes += t.Size
			}
		}
		deps := []*cluster.Handle{q.start}
		if w < len(rel.ready) && rel.ready[w] != nil {
			deps = append(deps, rel.ready[w])
		}
		var h *cluster.Handle
		if rel.onDisk {
			// Selection pushed down into PostgreSQL: only matching
			// records (located via the catalog) leave the local store.
			h = e.cl.DiskRead(node, keptBytes, deps...)
		} else {
			h = e.cl.Barrier(deps...)
		}
		// Native predicate evaluation at scan speed over the returned rows.
		d := e.work(e.model.Jitter(fmt.Sprintf("%s/w%d", name, w), e.model.AlgTime(cost.Filter, keptBytes)))
		out.parts[w] = kept
		out.ready[w] = q.note(e.cl.Submit(node, []*cluster.Handle{h}, d, nil))
	}
	q.reserve(out)
	q.track(out)
	return out
}

// Apply runs a Python UDF over every tuple (1→N), in place on each
// worker's partition — a pipelined, non-exchanging operator.
func (q *Query) Apply(rel *Relation, udf PyUDF) *Relation {
	if q.err != nil {
		return emptyLike(q.eng, udf.Name)
	}
	e := q.eng
	out := &Relation{Name: udf.Name, eng: e,
		parts: make([][]Tuple, e.Workers()),
		ready: make([]*cluster.Handle, e.Workers()),
	}
	for w := range rel.parts {
		node := e.nodeOf(w)
		var dur vtime.Duration
		var results []Tuple
		for _, t := range rel.parts[w] {
			dur += e.model.AlgTime(udf.Op, t.Size) + e.model.PyIPCTime(t.Size)
			res := udf.F(t)
			for _, o := range res {
				dur += e.model.PyIPCTime(o.Size)
			}
			results = append(results, res...)
		}
		out.parts[w] = results
		key := fmt.Sprintf("%s/w%d", udf.Name, w)
		out.ready[w] = q.note(e.cl.Submit(node, []*cluster.Handle{rel.ready[w], q.start}, e.work(e.model.Jitter(key, dur)), nil))
	}
	q.reserve(out)
	q.track(out)
	return out
}

// BroadcastJoin replicates the (small) right relation to every worker and
// joins on key prefix: each left tuple is matched with right tuples whose
// key is a prefix of the left key (e.g. mask keyed by subject joined to
// volumes keyed by subject/volume). The join itself is native.
func (q *Query) BroadcastJoin(name string, left, right *Relation, combine func(l Tuple, rs []Tuple) []Tuple) *Relation {
	if q.err != nil {
		return emptyLike(q.eng, name)
	}
	e := q.eng
	// Broadcast the right side.
	bh := q.note(e.cl.Broadcast(0, right.Bytes(), append(append([]*cluster.Handle{q.start}, right.ready...), e.startup)...))
	byPrefix := make(map[string][]Tuple)
	for _, p := range right.parts {
		for _, t := range p {
			byPrefix[t.Key] = append(byPrefix[t.Key], t)
		}
	}
	prefixes := make([]string, 0, len(byPrefix))
	for k := range byPrefix {
		prefixes = append(prefixes, k)
	}
	sort.Strings(prefixes)
	match := func(key string) []Tuple {
		for _, p := range prefixes {
			if len(p) <= len(key) && key[:len(p)] == p {
				return byPrefix[p]
			}
		}
		return nil
	}
	out := &Relation{Name: name, eng: e,
		parts: make([][]Tuple, e.Workers()),
		ready: make([]*cluster.Handle, e.Workers()),
	}
	for w := range left.parts {
		node := e.nodeOf(w)
		var results []Tuple
		var in int64
		for _, t := range left.parts[w] {
			results = append(results, combine(t, match(t.Key))...)
			in += t.Size
		}
		d := e.work(e.model.Jitter(fmt.Sprintf("%s/w%d", name, w), e.model.AlgTime(cost.Filter, in)))
		out.parts[w] = results
		out.ready[w] = q.note(e.cl.Submit(node, []*cluster.Handle{left.ready[w], bh}, d, nil))
	}
	q.reserve(out)
	q.track(out)
	return out
}

// Shuffle re-partitions rel by a derived key (groupKey), moving tuples to
// their hash-home workers over the network. GroupByApply depends on all
// senders: a pipeline-breaking exchange.
func (q *Query) Shuffle(rel *Relation, groupKey func(Tuple) string) *Relation {
	if q.err != nil {
		return emptyLike(q.eng, "shuffle")
	}
	e := q.eng
	out := &Relation{Name: "shuffle:" + rel.Name, eng: e,
		parts: make([][]Tuple, e.Workers()),
		ready: make([]*cluster.Handle, e.Workers()),
	}
	// Bytes moving between each node pair.
	type route struct{ src, dst int }
	traffic := make(map[route]int64)
	for w := range rel.parts {
		src := e.nodeOf(w)
		for _, t := range rel.parts[w] {
			gk := groupKey(t)
			hw := e.hashWorker(gk)
			out.parts[hw] = append(out.parts[hw], t)
			dst := e.nodeOf(hw)
			if src != dst {
				traffic[route{src, dst}] += t.Size
			}
		}
	}
	send := e.cl.Barrier(rel.ready...)
	var xfers []*cluster.Handle
	// Deterministic iteration over routes.
	routes := make([]route, 0, len(traffic))
	for r := range traffic {
		routes = append(routes, r)
	}
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].src != routes[j].src {
			return routes[i].src < routes[j].src
		}
		return routes[i].dst < routes[j].dst
	})
	for _, r := range routes {
		xfers = append(xfers, q.note(e.cl.Transfer(r.src, r.dst, traffic[r], send)))
	}
	arrive := e.cl.Barrier(xfers...)
	if len(xfers) == 0 {
		arrive = send
	}
	for w := range out.parts {
		out.ready[w] = arrive
	}
	q.reserve(out)
	q.track(out)
	return out
}

// GroupByApply shuffles rel by groupKey and applies the Python UDA to each
// group on its home worker.
func (q *Query) GroupByApply(rel *Relation, groupKey func(Tuple) string, uda PyUDA) *Relation {
	sh := q.Shuffle(rel, groupKey)
	if q.err != nil {
		return emptyLike(q.eng, uda.Name)
	}
	e := q.eng
	out := &Relation{Name: uda.Name, eng: e,
		parts: make([][]Tuple, e.Workers()),
		ready: make([]*cluster.Handle, e.Workers()),
	}
	for w := range sh.parts {
		node := e.nodeOf(w)
		groups := make(map[string][]Tuple)
		var order []string
		for _, t := range sh.parts[w] {
			gk := groupKey(t)
			if _, ok := groups[gk]; !ok {
				order = append(order, gk)
			}
			groups[gk] = append(groups[gk], t)
		}
		sort.Strings(order)
		var dur vtime.Duration
		var results []Tuple
		for _, k := range order {
			g := groups[k]
			var gb int64
			for _, t := range g {
				gb += t.Size
			}
			dur += e.model.AlgTime(uda.Op, gb) + e.model.PyIPCTime(gb)
			res := uda.F(k, g)
			for _, o := range res {
				dur += e.model.PyIPCTime(o.Size)
			}
			results = append(results, res...)
		}
		out.parts[w] = results
		key := fmt.Sprintf("%s/w%d", uda.Name, w)
		out.ready[w] = q.note(e.cl.Submit(node, []*cluster.Handle{sh.ready[w]}, e.work(e.model.Jitter(key, dur)), nil))
	}
	q.reserve(out)
	q.track(out)
	return out
}

// Collect gathers rel's tuples on the coordinator.
func (q *Query) Collect(rel *Relation) ([]Tuple, *cluster.Handle) {
	if q.err != nil {
		return nil, nil
	}
	e := q.eng
	var out []Tuple
	var deps []*cluster.Handle
	for w := range rel.parts {
		deps = append(deps, q.note(e.cl.Transfer(e.nodeOf(w), 0, rel.partBytes(w), rel.ready[w])))
		out = append(out, rel.parts[w]...)
	}
	return out, e.cl.Barrier(deps...)
}

func emptyLike(e *Engine, name string) *Relation {
	return &Relation{Name: name, eng: e,
		parts: make([][]Tuple, e.Workers()),
		ready: make([]*cluster.Handle, e.Workers()),
	}
}
