// Package neuro implements the paper's neuroscience use case (Section
// 3.1): a three-step diffusion-MRI pipeline — Step 1N segmentation
// (b0 filter → mean → Otsu mask), Step 2N non-local-means denoising, and
// Step 3N diffusion-tensor-model fitting producing a fractional-anisotropy
// map per subject — as a single-node reference implementation plus one
// implementation per evaluated engine, mirroring the paper's code
// structure for each system (Figures 5–9).
package neuro

import (
	"fmt"
	"strconv"
	"strings"

	"imagebench/internal/dmri"
	"imagebench/internal/imaging"
	"imagebench/internal/objstore"
	"imagebench/internal/synth"
	"imagebench/internal/volume"
)

// Workload bundles everything an implementation needs: the object store
// with staged data, the acquisition scheme, and the geometry.
type Workload struct {
	Store    *objstore.Store
	Grad     *dmri.GradTable
	Cfg      synth.NeuroConfig
	Subjects int
	// Blocks is the number of voxel slabs the model-fit step partitions
	// each subject into (the paper's repart operation).
	Blocks int
}

// NewWorkload generates the synthetic dataset for n subjects and returns
// the workload description.
func NewWorkload(n int) (*Workload, error) {
	return NewWorkloadCfg(synth.DefaultNeuro(n))
}

// NewWorkloadCfg is NewWorkload with explicit geometry.
func NewWorkloadCfg(cfg synth.NeuroConfig) (*Workload, error) {
	store := objstore.New()
	g, err := synth.GenNeuro(store, cfg)
	if err != nil {
		return nil, err
	}
	return &Workload{Store: store, Grad: g, Cfg: cfg, Subjects: cfg.Subjects, Blocks: 4}, nil
}

// InputModelBytes returns the paper-scale input size.
func (w *Workload) InputModelBytes() int64 {
	return w.Cfg.SubjectModelBytes() * int64(w.Subjects)
}

// LargestIntermediateModelBytes returns the paper-scale size of the
// largest intermediate relation: the denoised volumes plus the voxel-block
// re-partitioning, roughly 2× the input (the paper's Fig 10a).
func (w *Workload) LargestIntermediateModelBytes() int64 {
	return 2 * w.InputModelBytes()
}

// SubjectResult is the per-subject output of the pipeline.
type SubjectResult struct {
	Subject int
	Mask    *volume.V3
	FA      *volume.V3
}

// Result is the output of one pipeline run.
type Result struct {
	Subjects map[int]*SubjectResult
}

// VolKey formats the record key for one volume, and ParseVolKey inverts
// it. Engine implementations key records by subject and volume IDs, as
// the paper's Spark/Myria implementations do.
func VolKey(subject, vol int) string { return fmt.Sprintf("s%03d/t%03d", subject, vol) }

// ParseVolKey extracts the subject and volume from a VolKey.
func ParseVolKey(key string) (subject, vol int, err error) {
	parts := strings.SplitN(key, "/", 2)
	if len(parts) != 2 || len(parts[0]) < 2 || len(parts[1]) < 2 {
		return 0, 0, fmt.Errorf("neuro: bad volume key %q", key)
	}
	s, err := strconv.Atoi(parts[0][1:])
	if err != nil {
		return 0, 0, fmt.Errorf("neuro: bad volume key %q", key)
	}
	t, err := strconv.Atoi(parts[1][1:])
	if err != nil {
		return 0, 0, fmt.Errorf("neuro: bad volume key %q", key)
	}
	return s, t, nil
}

// SubjKey formats a subject-level record key.
func SubjKey(subject int) string { return fmt.Sprintf("s%03d", subject) }

// DenoiseOpts are the non-local-means settings shared by every
// implementation so outputs are comparable.
var DenoiseOpts = imaging.NLMeansOpts{PatchRadius: 1, SearchRadius: 2}

// Segment runs the three sub-steps of Step 1N on a subject's b0 volumes:
// mean across volumes, median smoothing, Otsu threshold. The mean and
// smoothed intermediates live in the shared scratch arena; only the
// returned mask is a fresh allocation.
func Segment(b0 []*volume.V3) *volume.V3 {
	if len(b0) == 0 {
		panic("neuro: segment of no volumes")
	}
	ar := volume.Scratch
	mean := ar.Get(b0[0].NX, b0[0].NY, b0[0].NZ)
	volume.Mean3Into(mean, b0)
	smoothed := ar.Get(mean.NX, mean.NY, mean.NZ)
	imaging.MedianFilter3Into(smoothed, mean, 1)
	ar.Put(mean)
	mask := imaging.OtsuMask(smoothed)
	ar.Put(smoothed)
	return mask
}

// Denoise runs Step 2N on one volume under the mask.
func Denoise(v *volume.V3, mask *volume.V3) *volume.V3 {
	return imaging.NLMeans3(v, mask, DenoiseOpts)
}

// FitBlock runs Step 3N on one voxel slab: vols are the per-volume slabs
// (in gradient-table order) and mask the matching mask slab. It returns
// the FA slab.
func FitBlock(g *dmri.GradTable, vols []*volume.V3, mask *volume.V3) (*volume.V3, error) {
	return dmri.FitFA(g, volume.New4(vols), mask)
}

// Reference runs the single-node reference implementation (the Python +
// Dipy baseline in the paper) for every subject, reading NIfTI files from
// the store. Subjects stream through one at a time: each subject's
// input volumes come from the shared scratch arena and are recycled
// before the next subject is decoded, so the working set is one
// subject, not the dataset.
func Reference(w *Workload) (*Result, error) {
	res := &Result{Subjects: make(map[int]*SubjectResult)}
	ar := volume.Scratch
	for s := 0; s < w.Subjects; s++ {
		obj, err := w.Store.Get(synth.NeuroKeyNIfTI(s))
		if err != nil {
			return nil, err
		}
		data, err := decodeNIfTIArena(obj, ar)
		if err != nil {
			return nil, err
		}
		sr, err := ReferenceSubject(w.Grad, data)
		// The subject result holds only the fresh mask and FA volumes,
		// never the input, so the input can go back to the pool either way.
		for _, v := range data.Vols {
			ar.Put(v)
		}
		if err != nil {
			return nil, err
		}
		sr.Subject = s
		res.Subjects[s] = sr
	}
	return res, nil
}
