package neuro

import (
	"fmt"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/dask"
	"imagebench/internal/myria"
	"imagebench/internal/objstore"
	"imagebench/internal/scidb"
	"imagebench/internal/spark"
	"imagebench/internal/synth"
	"imagebench/internal/tfgraph"
	"imagebench/internal/volume"
	"imagebench/internal/vtime"
)

// This file provides the individual-step runners behind the paper's
// Figure 11 (data ingest) and Figures 12a–12c (filter, mean, denoise).
// Each runner receives a fresh cluster, performs any setup (ingest) and
// then the measured step, returning the step's virtual duration as the
// makespan delta.

// delta measures the virtual time consumed by f on cl.
func delta(cl *cluster.Cluster, f func() error) (vtime.Duration, error) {
	t0 := cl.Makespan()
	if err := f(); err != nil {
		return 0, err
	}
	return cl.Makespan().Sub(t0), nil
}

// sparkDecode decodes staged .npy objects into volume records.
func sparkDecode(obj objstore.Object) []spark.Pair {
	s, t, err := npyKeyIDs(obj.Key)
	if err != nil {
		return nil
	}
	v, err := decodeNPY(obj)
	if err != nil {
		return nil
	}
	return []spark.Pair{{Key: VolKey(s, t), Value: v, Size: synth.PaperVolBytes}}
}

func myriaDecode(obj objstore.Object) []myria.Tuple {
	for _, p := range sparkDecode(obj) {
		return []myria.Tuple{{Key: p.Key, Value: p.Value, Size: p.Size}}
	}
	return nil
}

// IngestTime measures each system's data-ingest path (Fig 11). The
// sysVariant strings are "Spark", "Myria", "Dask", "TensorFlow",
// "SciDB-1" (from_array), and "SciDB-2" (aio_input).
func IngestTime(w *Workload, cl *cluster.Cluster, model *cost.Model, sysVariant string) (vtime.Duration, error) {
	if model == nil {
		model = cost.Default()
	}
	// Each case builds a different per-system ingest simulation; the
	// registry's NeuroIngester adapters delegate here.
	//lint:allow enginedispatch per-system simulation models live here; adapters delegate in
	switch sysVariant {
	case "Spark":
		sess := spark.NewSession(cl, w.Store, model)
		return delta(cl, func() error {
			// Loading into in-memory RDDs.
			_, err := sess.Objects("neuro/npy/", cl.Workers(), sparkDecode).Cache().Materialize()
			return err
		})
	case "Myria":
		eng := myria.New(cl, w.Store, model, myria.DefaultConfig())
		return delta(cl, func() error {
			// Reading from S3 into per-node PostgreSQL instances.
			_, err := eng.Ingest("Images", "neuro/npy/", myriaDecode)
			return err
		})
	case "Dask":
		sess := dask.NewSession(cl, w.Store, model)
		return delta(cl, func() error {
			// Loading NIfTI files into in-memory arrays, subjects pinned
			// to nodes (Section 5.2.1).
			var fetches []*dask.Delayed
			for s := 0; s < w.Subjects; s++ {
				fetches = append(fetches, sess.Fetch(synth.NeuroKeyNIfTI(s), s%cl.Nodes(),
					func(obj objstore.Object) (any, int64, error) {
						v4, err := decodeNIfTI(obj)
						return v4, w.Cfg.SubjectModelBytes(), err
					}))
			}
			_, err := sess.Compute(fetches...)
			return err
		})
	case "TensorFlow":
		sess := tfgraph.NewSession(cl, w.Store, model)
		return delta(cl, func() error {
			_, _, err := sess.Ingest("neuro/npy/", func(obj objstore.Object) ([]tfgraph.Tensor, error) {
				v, err := decodeNPY(obj)
				if err != nil {
					return nil, err
				}
				return []tfgraph.Tensor{{Value: v, Size: synth.PaperVolBytes}}, nil
			})
			return err
		})
	case "SciDB-1":
		eng := scidb.New(cl, w.Store, model, scidb.DefaultConfig())
		return delta(cl, func() error {
			_, err := SciDBIngest(w, eng, SciDBFromArray)
			return err
		})
	case "SciDB-2":
		eng := scidb.New(cl, w.Store, model, scidb.DefaultConfig())
		return delta(cl, func() error {
			_, err := SciDBIngest(w, eng, SciDBAio)
			return err
		})
	}
	return 0, fmt.Errorf("neuro: unknown ingest variant %q", sysVariant)
}

// StepTime measures one pipeline step (Fig 12a–c) on one system after
// the necessary setup. step is "filter", "mean", or "denoise"; sys is
// "Spark", "Myria", "Dask", "SciDB", or "TensorFlow".
func StepTime(w *Workload, cl *cluster.Cluster, model *cost.Model, sys, step string) (vtime.Duration, error) {
	if model == nil {
		model = cost.Default()
	}
	// Per-system step simulators, reached via the NeuroStepper adapters.
	//lint:allow enginedispatch per-system simulation models live here; adapters delegate in
	switch sys {
	case "Spark":
		return sparkStep(w, cl, model, step)
	case "Myria":
		return myriaStep(w, cl, model, step)
	case "Dask":
		return daskStep(w, cl, model, step)
	case "SciDB":
		return scidbStep(w, cl, model, step)
	case "TensorFlow":
		return tfStep(w, cl, model, step)
	}
	return 0, fmt.Errorf("neuro: unknown system %q", sys)
}

// referenceMasks computes the per-subject masks outside any timing, for
// denoise-step measurements (the mask is an input to Step 2N).
func referenceMasks(w *Workload) (map[int]*volume.V3, error) {
	ref, err := Reference(w)
	if err != nil {
		return nil, err
	}
	masks := make(map[int]*volume.V3, len(ref.Subjects))
	for s, sr := range ref.Subjects {
		masks[s] = sr.Mask
	}
	return masks, nil
}

func sparkStep(w *Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	sess := spark.NewSession(cl, w.Store, model)
	b0 := w.Grad.B0Mask(50)
	img := sess.Objects("neuro/npy/", cl.Workers(), sparkDecode).Cache()
	if _, err := img.Materialize(); err != nil {
		return 0, err
	}
	filterUDF := spark.UDF{Name: "filter-b0", Op: cost.Filter, F: func(p spark.Pair) []spark.Pair {
		s, t, err := ParseVolKey(p.Key)
		if err != nil || t >= len(b0) || !b0[t] {
			return nil
		}
		return []spark.Pair{{Key: SubjKey(s), Value: tsVol{T: t, Vol: p.Value.(*volume.V3)}, Size: p.Size}}
	}}
	switch step {
	case "filter":
		return delta(cl, func() error {
			_, err := img.Map(filterUDF).Materialize()
			return err
		})
	case "mean":
		b0RDD := img.Map(filterUDF)
		if _, err := b0RDD.Materialize(); err != nil {
			return 0, err
		}
		return delta(cl, func() error {
			_, err := b0RDD.GroupByKey("mean", cost.Mean, 0, func(key string, values []spark.Pair) []spark.Pair {
				vols := sortedVols(values, func(p spark.Pair) tsVol { return p.Value.(tsVol) })
				return []spark.Pair{{Key: key, Value: volume.Mean3(vols), Size: synth.PaperVolBytes}}
			}).Materialize()
			return err
		})
	case "denoise":
		masks, err := referenceMasks(w)
		if err != nil {
			return 0, err
		}
		return delta(cl, func() error {
			_, err := img.Map(spark.UDF{Name: "denoise", Op: cost.Denoise, F: func(p spark.Pair) []spark.Pair {
				s, _, err := ParseVolKey(p.Key)
				if err != nil {
					return nil
				}
				return []spark.Pair{{Key: p.Key, Value: Denoise(p.Value.(*volume.V3), masks[s]), Size: p.Size}}
			}}).Materialize()
			return err
		})
	}
	return 0, fmt.Errorf("neuro: unknown step %q", step)
}

func myriaStep(w *Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	eng := myria.New(cl, w.Store, model, myria.DefaultConfig())
	b0 := w.Grad.B0Mask(50)
	images, err := eng.Ingest("Images", "neuro/npy/", myriaDecode)
	if err != nil {
		return 0, err
	}
	pred := func(t myria.Tuple) bool {
		_, vol, err := ParseVolKey(t.Key)
		return err == nil && vol < len(b0) && b0[vol]
	}
	switch step {
	case "filter":
		// Selection pushed down into the node-local store.
		return delta(cl, func() error {
			q := eng.NewQuery()
			q.ScanWhere(images, pred)
			_, err := q.Finish()
			return err
		})
	case "mean":
		q := eng.NewQuery()
		b0Rel := q.ScanWhere(images, pred)
		h, err := q.Finish()
		if err != nil {
			return 0, err
		}
		return delta(cl, func() error {
			q2 := eng.NewQuery(h)
			q2.GroupByApply(b0Rel,
				func(t myria.Tuple) string { s, _, _ := ParseVolKey(t.Key); return SubjKey(s) },
				myria.PyUDA{Name: "mean", Op: cost.Mean, F: func(key string, group []myria.Tuple) []myria.Tuple {
					vols := sortedVols(group, func(t myria.Tuple) tsVol {
						_, vol, _ := ParseVolKey(t.Key)
						return tsVol{T: vol, Vol: t.Value.(*volume.V3)}
					})
					return []myria.Tuple{{Key: key, Value: volume.Mean3(vols), Size: synth.PaperVolBytes}}
				}})
			_, err := q2.Finish()
			return err
		})
	case "denoise":
		masks, err := referenceMasks(w)
		if err != nil {
			return 0, err
		}
		return delta(cl, func() error {
			q := eng.NewQuery()
			scan := q.Scan(images)
			q.Apply(scan, myria.PyUDF{Name: "Denoise", Op: cost.Denoise, F: func(t myria.Tuple) []myria.Tuple {
				s, _, err := ParseVolKey(t.Key)
				if err != nil {
					return nil
				}
				return []myria.Tuple{{Key: t.Key, Value: Denoise(t.Value.(*volume.V3), masks[s]), Size: t.Size}}
			}})
			_, err := q.Finish()
			return err
		})
	}
	return 0, fmt.Errorf("neuro: unknown step %q", step)
}

func daskStep(w *Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	sess := dask.NewSession(cl, w.Store, model)
	b0 := w.Grad.B0Mask(50)
	// Setup: subjects already in memory across the cluster.
	fetch := make([]*dask.Delayed, w.Subjects)
	for s := 0; s < w.Subjects; s++ {
		fetch[s] = sess.Fetch(synth.NeuroKeyNIfTI(s), s%cl.Nodes(), func(obj objstore.Object) (any, int64, error) {
			v4, err := decodeNIfTI(obj)
			return v4, w.Cfg.SubjectModelBytes(), err
		})
	}
	if _, err := sess.Compute(fetch...); err != nil {
		return 0, err
	}
	switch step {
	case "filter":
		// All data is in memory; filtering is a cheap in-memory select.
		return delta(cl, func() error {
			var roots []*dask.Delayed
			for s := 0; s < w.Subjects; s++ {
				roots = append(roots, sess.Delayed(fmt.Sprintf("filter/%s", SubjKey(s)), cost.Filter,
					[]*dask.Delayed{fetch[s]},
					func(args []any) (any, int64, error) {
						v4 := args[0].(*volume.V4).Select(b0)
						return v4, synth.PaperVolBytes * int64(v4.T()), nil
					}))
			}
			_, err := sess.Compute(roots...)
			return err
		})
	case "mean":
		filtered := make([]*dask.Delayed, w.Subjects)
		for s := 0; s < w.Subjects; s++ {
			filtered[s] = sess.Delayed(fmt.Sprintf("filter/%s", SubjKey(s)), cost.Filter,
				[]*dask.Delayed{fetch[s]},
				func(args []any) (any, int64, error) {
					v4 := args[0].(*volume.V4).Select(b0)
					return v4, synth.PaperVolBytes * int64(v4.T()), nil
				})
		}
		if _, err := sess.Compute(filtered...); err != nil {
			return 0, err
		}
		return delta(cl, func() error {
			var roots []*dask.Delayed
			for s := 0; s < w.Subjects; s++ {
				roots = append(roots, sess.Delayed(fmt.Sprintf("mean/%s", SubjKey(s)), cost.Mean,
					[]*dask.Delayed{filtered[s]},
					func(args []any) (any, int64, error) {
						return volume.Mean3(args[0].(*volume.V4).Vols), synth.PaperVolBytes, nil
					}))
			}
			_, err := sess.Compute(roots...)
			return err
		})
	case "denoise":
		masks, err := referenceMasks(w)
		if err != nil {
			return 0, err
		}
		return delta(cl, func() error {
			var roots []*dask.Delayed
			for s := 0; s < w.Subjects; s++ {
				s := s
				for t := 0; t < w.Cfg.T; t++ {
					t := t
					roots = append(roots, sess.DelayedCost("denoise/"+VolKey(s, t),
						func(int64) vtime.Duration {
							return model.AlgTime(cost.Denoise, synth.PaperVolBytes)
						},
						[]*dask.Delayed{fetch[s]},
						func(args []any) (any, int64, error) {
							v := args[0].(*volume.V4).Vols[t]
							return Denoise(v, masks[s]), synth.PaperVolBytes, nil
						}))
				}
			}
			_, err := sess.Compute(roots...)
			return err
		})
	}
	return 0, fmt.Errorf("neuro: unknown step %q", step)
}

func scidbStep(w *Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	eng := scidb.New(cl, w.Store, model, scidb.DefaultConfig())
	arr, err := SciDBIngest(w, eng, SciDBAio)
	if err != nil {
		return 0, err
	}
	if h := arr.Done(); h.Err != nil {
		return 0, h.Err
	}
	b0 := w.Grad.B0Mask(50)
	keep := func(c scidb.Chunk) bool {
		_, t, err := ParseVolKey(c.Coords)
		return err == nil && t < len(b0) && b0[t]
	}
	switch step {
	case "filter":
		// The selection cuts across the chunk layout (the volume ID is
		// the fourth dimension): chunks are read, subset, reassembled.
		return delta(cl, func() error {
			f := arr.Filter("filter-b0", false, keep)
			return f.Done().Err
		})
	case "mean":
		filtered := arr.Filter("filter-b0", false, keep)
		if h := filtered.Done(); h.Err != nil {
			return 0, h.Err
		}
		return delta(cl, func() error {
			m := filtered.Aggregate("mean", cost.Mean,
				func(c scidb.Chunk) string { s, _, _ := ParseVolKey(c.Coords); return SubjKey(s) },
				func(key string, group []scidb.Chunk) scidb.Chunk {
					vols := make([]*volume.V3, 0, len(group))
					for _, c := range group {
						vols = append(vols, c.Value.(*volume.V3))
					}
					return scidb.Chunk{Coords: key, Value: volume.Mean3(vols), Size: synth.PaperVolBytes}
				})
			return m.Done().Err
		})
	case "denoise":
		return delta(cl, func() error {
			d := arr.Stream("denoise", cost.Denoise, func(c scidb.Chunk) scidb.Chunk {
				v := c.Value.(*volume.V3)
				return scidb.Chunk{Coords: c.Coords, Value: Denoise(v, nil), Size: c.Size}
			})
			return d.Done().Err
		})
	}
	return 0, fmt.Errorf("neuro: unknown step %q", step)
}

// TFFilterTime measures the TensorFlow filter step under an explicit
// volume-to-device assignment (Section 5.3.1's manual-assignment sweep).
func TFFilterTime(w *Workload, cl *cluster.Cluster, model *cost.Model, assign []int) (vtime.Duration, error) {
	if model == nil {
		model = cost.Default()
	}
	sess := tfgraph.NewSession(cl, w.Store, model)
	items, _, err := sess.Ingest("neuro/npy/", func(obj objstore.Object) ([]tfgraph.Tensor, error) {
		v, err := decodeNPY(obj)
		if err != nil {
			return nil, err
		}
		return []tfgraph.Tensor{{Value: v, Size: synth.PaperVolBytes}}, nil
	})
	if err != nil {
		return 0, err
	}
	return delta(cl, func() error {
		_, _, err := sess.RunStep("filter-b0", cost.Filter, items,
			tfgraph.StepOpts{Assign: assign, ConvertPasses: 4},
			func(t tfgraph.Tensor) (tfgraph.Tensor, error) { return t, nil })
		return err
	})
}

func tfStep(w *Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	sess := tfgraph.NewSession(cl, w.Store, model)
	b0 := w.Grad.B0Mask(50)
	type volItem struct {
		subj, t int
		vol     *volume.V3
	}
	items, _, err := sess.Ingest("neuro/npy/", func(obj objstore.Object) ([]tfgraph.Tensor, error) {
		s, t, err := npyKeyIDs(obj.Key)
		if err != nil {
			return nil, err
		}
		v, err := decodeNPY(obj)
		if err != nil {
			return nil, err
		}
		return []tfgraph.Tensor{{Value: volItem{s, t, v}, Size: synth.PaperVolBytes}}, nil
	})
	if err != nil {
		return 0, err
	}
	identity := func(t tfgraph.Tensor) (tfgraph.Tensor, error) { return t, nil }
	switch step {
	case "filter":
		// Flatten + select + reshape workaround (Fig 12a).
		return delta(cl, func() error {
			_, _, err := sess.RunStep("filter-b0", cost.Filter, items, tfgraph.StepOpts{ConvertPasses: 4}, identity)
			return err
		})
	case "mean":
		filtered, _, err := sess.RunStep("filter-b0", cost.Filter, items, tfgraph.StepOpts{ConvertPasses: 4}, identity)
		if err != nil {
			return 0, err
		}
		var b0Items []tfgraph.Tensor
		for _, it := range filtered {
			vi := it.Value.(volItem)
			if vi.t < len(b0) && b0[vi.t] {
				b0Items = append(b0Items, it)
			}
		}
		return delta(cl, func() error {
			_, _, err := sess.RunStep("mean", cost.Mean, b0Items, tfgraph.StepOpts{}, identity)
			return err
		})
	case "denoise":
		return delta(cl, func() error {
			_, _, err := sess.RunStep("denoise", cost.Denoise, items, tfgraph.StepOpts{},
				func(t tfgraph.Tensor) (tfgraph.Tensor, error) {
					vi := t.Value.(volItem)
					return tfgraph.Tensor{Value: volItem{vi.subj, vi.t, Denoise(vi.vol, nil)}, Size: t.Size}, nil
				})
			return err
		})
	}
	return 0, fmt.Errorf("neuro: unknown step %q", step)
}
