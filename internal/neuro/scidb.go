package neuro

import (
	"fmt"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/imaging"
	"imagebench/internal/scidb"
	"imagebench/internal/synth"
	"imagebench/internal/tsv"
	"imagebench/internal/volume"
)

// SciDBIngestMode selects the ingest path (Fig 11).
type SciDBIngestMode int

const (
	// SciDBFromArray is the SciDB-py from_array() path: serial through
	// the coordinator's Python interface (SciDB-1).
	SciDBFromArray SciDBIngestMode = iota
	// SciDBAio converts NIfTI to CSV and loads with the accelerated
	// aio_input() library in parallel (SciDB-2).
	SciDBAio
)

// SciDBResult holds what the SciDB implementation can produce: the paper
// could express only Step 1N (filter + mean + mask) natively and Step 2N
// through the stream() interface; Step 3N was not implementable
// (Table 1: "NA").
type SciDBResult struct {
	Masks    map[int]*volume.V3
	Denoised map[string]*volume.V3 // VolKey → denoised volume (unmasked)
}

// loadSciDBChunks ingests the staged per-volume arrays as one chunk per
// volume.
func loadSciDBChunks(w *Workload) ([]scidb.Chunk, error) {
	var chunks []scidb.Chunk
	for _, key := range w.Store.List("neuro/npy/") {
		obj, err := w.Store.Get(key)
		if err != nil {
			return nil, err
		}
		s, t, err := npyKeyIDs(key)
		if err != nil {
			return nil, err
		}
		v, err := decodeNPY(obj)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, scidb.Chunk{Coords: VolKey(s, t), Value: v, Size: synth.PaperVolBytes})
	}
	return chunks, nil
}

// SciDBIngest loads the dataset into a SciDB array via the selected path
// and returns the array (used by the ingest benchmark, Fig 11). The aio
// path really converts each volume NIfTI→CSV and parses it back, the
// conversion the paper performs before aio_input; the measured text
// expansion also validates the cost model's CSV tax.
func SciDBIngest(w *Workload, eng *scidb.Engine, mode SciDBIngestMode) (*scidb.Array, error) {
	chunks, err := loadSciDBChunks(w)
	if err != nil {
		return nil, err
	}
	if mode == SciDBFromArray {
		return eng.IngestFromArray("Images", chunks)
	}
	expansion := 2.5
	for i, c := range chunks {
		v := c.Value.(*volume.V3)
		csv := tsv.EncodeCSV(v)
		if i == 0 {
			expansion = float64(len(csv)) / float64(8*v.Len())
		}
		parsed, err := tsv.DecodeCSV(csv)
		if err != nil {
			return nil, fmt.Errorf("neuro/scidb: CSV conversion: %w", err)
		}
		chunks[i].Value = parsed
	}
	return eng.IngestAio("Images", chunks, expansion)
}

// RunSciDB executes the SciDB implementation: ingest, Step 1N with native
// AFL operators (the selection is not aligned with the chunk layout — the
// volume ID is the fourth dimension), and Step 2N through stream(),
// which cannot use the mask (chunks cross the external process as TSV
// without side inputs), mirroring Section 4.1.
func RunSciDB(w *Workload, cl *cluster.Cluster, model *cost.Model, mode SciDBIngestMode) (*SciDBResult, error) {
	if model == nil {
		model = cost.Default()
	}
	eng := scidb.New(cl, w.Store, model, scidb.DefaultConfig())
	arr, err := SciDBIngest(w, eng, mode)
	if err != nil {
		return nil, err
	}
	cl.MarkStage("ingest")
	b0 := w.Grad.B0Mask(50)

	// Step 1N: filter b0 volumes (chunk-misaligned selection), then a
	// native dimension aggregate computing the per-subject mean, then the
	// mask on the aggregated chunk.
	filtered := arr.Filter("filter-b0", false, func(c scidb.Chunk) bool {
		_, t, err := ParseVolKey(c.Coords)
		return err == nil && t < len(b0) && b0[t]
	})
	maskArr := filtered.Aggregate("mean-mask", cost.Mean,
		func(c scidb.Chunk) string {
			s, _, _ := ParseVolKey(c.Coords)
			return SubjKey(s)
		},
		func(key string, group []scidb.Chunk) scidb.Chunk {
			vols := make([]*volume.V3, 0, len(group))
			for _, c := range group {
				vols = append(vols, c.Value.(*volume.V3))
			}
			return scidb.Chunk{Coords: key, Value: Segment(vols), Size: synth.PaperVolBytes / 4}
		})

	// Step 2N: denoise every volume through stream(). The external
	// process sees only the chunk's TSV data, so the mask cannot be
	// applied (unmasked non-local means). The chunk really crosses the
	// boundary as TSV in both directions — the conversion the paper had
	// to build around ("required us to convert between TSV and FITS").
	den := arr.Stream("denoise", cost.Denoise, func(c scidb.Chunk) scidb.Chunk {
		v, err := tsv.Decode(tsv.Encode(c.Value.(*volume.V3)))
		if err != nil {
			panic(fmt.Sprintf("neuro/scidb: stream TSV round trip: %v", err))
		}
		out := imaging.NLMeans3(v, nil, DenoiseOpts)
		back, err := tsv.Decode(tsv.Encode(out))
		if err != nil {
			panic(fmt.Sprintf("neuro/scidb: stream TSV return trip: %v", err))
		}
		return scidb.Chunk{Coords: c.Coords, Value: back, Size: c.Size}
	})
	if h := den.Done(); h.Err != nil {
		return nil, h.Err
	}
	if h := maskArr.Done(); h.Err != nil {
		return nil, h.Err
	}
	cl.MarkStage("queries")

	res := &SciDBResult{Masks: make(map[int]*volume.V3), Denoised: make(map[string]*volume.V3)}
	for _, c := range maskArr.Chunks {
		var s int
		if _, err := fmt.Sscanf(c.Coords, "s%03d", &s); err != nil {
			return nil, fmt.Errorf("neuro/scidb: bad mask coords %q", c.Coords)
		}
		res.Masks[s] = c.Value.(*volume.V3)
	}
	for _, c := range den.Chunks {
		res.Denoised[c.Coords] = c.Value.(*volume.V3)
	}
	return res, nil
}
