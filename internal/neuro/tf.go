package neuro

import (
	"fmt"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/imaging"
	"imagebench/internal/objstore"
	"imagebench/internal/synth"
	"imagebench/internal/tfgraph"
	"imagebench/internal/volume"
)

// TFResult holds what the TensorFlow implementation can produce. The
// paper implemented a simplified Step 1N (mean + thresholding instead of
// median_otsu) and a Step 2N without the mask (no element-wise masked
// assignment); Step 3N was not implementable (Table 1: "NA").
type TFResult struct {
	Masks    map[int]*volume.V3
	Denoised map[string]*volume.V3 // VolKey → denoised volume (unmasked)
}

// TFOpts tunes the TensorFlow implementation.
type TFOpts struct {
	// Assign maps item index → device for the filter step; nil uses the
	// round-robin default (Section 5.3.1 found a 2× spread between
	// assignments).
	Assign []int
	// ConvDenoise replaces Step 2N's (unmasked) non-local means with the
	// convolutional rewrite the paper describes ("We further rewrite
	// Step 2N using convolutions", Section 4.5): a separable Gaussian
	// smoothing expressed as tensor ops. The result is a different —
	// cruder — denoiser; the paper's TensorFlow column is approximate by
	// construction.
	ConvDenoise bool
	// ConvSigma is the Gaussian σ for ConvDenoise (default 1.0).
	ConvSigma float64
}

// RunTF executes the TensorFlow implementation: master-side ingest, a
// filter step paying flatten/reshape passes (selection is only supported
// along the first tensor dimension), per-subject mean steps, a simplified
// threshold mask on the master, and unmasked convolution-style denoising —
// mirroring Section 4.5 and Figure 9.
func RunTF(w *Workload, cl *cluster.Cluster, model *cost.Model, opts TFOpts) (*TFResult, error) {
	if model == nil {
		model = cost.Default()
	}
	sess := tfgraph.NewSession(cl, w.Store, model)
	volBytes := synth.PaperVolBytes
	b0 := w.Grad.B0Mask(50)

	type volItem struct {
		subj, t int
		vol     *volume.V3
	}
	items, _, err := sess.Ingest("neuro/npy/", func(obj objstore.Object) ([]tfgraph.Tensor, error) {
		s, t, err := npyKeyIDs(obj.Key)
		if err != nil {
			return nil, err
		}
		v, err := decodeNPY(obj)
		if err != nil {
			return nil, err
		}
		return []tfgraph.Tensor{{Value: volItem{s, t, v}, Size: volBytes}}, nil
	})
	if err != nil {
		return nil, err
	}
	cl.MarkStage("ingest")

	// Step: filter on the volume ID (the fourth dimension). TensorFlow
	// only filters along the first dimension, so the 4-D tensor is
	// flattened, selected, and reshaped back — four extra full passes
	// (flatten and reshape, each direction).
	filtered, _, err := sess.RunStep("filter-b0", cost.Filter, items,
		tfgraph.StepOpts{Assign: opts.Assign, ConvertPasses: 4},
		func(t tfgraph.Tensor) (tfgraph.Tensor, error) { return t, nil })
	if err != nil {
		return nil, err
	}
	cl.MarkStage("filter")
	// Master-side selection of the b0 items after the reshape.
	bySubj := make(map[int][]tfgraph.Tensor)
	for _, it := range filtered {
		vi := it.Value.(volItem)
		if vi.t < len(b0) && b0[vi.t] {
			bySubj[vi.subj] = append(bySubj[vi.subj], it)
		}
	}

	res := &TFResult{Masks: make(map[int]*volume.V3), Denoised: make(map[string]*volume.V3)}

	// Step: per-subject mean via reduce_mean partials on the workers,
	// combined on the master, then the simplified mask (a straight
	// threshold — no median_otsu in TensorFlow).
	for s := 0; s < w.Subjects; s++ {
		group := bySubj[s]
		if len(group) == 0 {
			return nil, fmt.Errorf("neuro/tf: subject %d has no b0 volumes", s)
		}
		partials, _, err := sess.RunStep(fmt.Sprintf("mean/s%03d", s), cost.Mean, group, tfgraph.StepOpts{},
			func(t tfgraph.Tensor) (tfgraph.Tensor, error) {
				return t, nil // partial sums; combination happens on the master
			})
		if err != nil {
			return nil, err
		}
		vols := make([]*volume.V3, 0, len(partials))
		for _, p := range partials {
			vols = append(vols, p.Value.(volItem).vol)
		}
		mean := volume.Mean3(vols)
		res.Masks[s] = simplifiedMask(mean)
	}
	cl.MarkStage("mask")

	// Step: denoise every volume, without the mask (element-wise masked
	// assignment is unsupported). With ConvDenoise the step runs the
	// convolutional rewrite instead of non-local means.
	sigma := opts.ConvSigma
	if sigma <= 0 {
		sigma = 1
	}
	denoiseOp := cost.Denoise
	denoiseFn := func(v *volume.V3) *volume.V3 { return imaging.NLMeans3(v, nil, DenoiseOpts) }
	if opts.ConvDenoise {
		// Convolution streams at memory bandwidth, unlike the
		// compute-bound patch search.
		denoiseOp = cost.Mean
		denoiseFn = func(v *volume.V3) *volume.V3 { return imaging.GaussianSmooth3(v, sigma) }
	}
	denoised, _, err := sess.RunStep("denoise", denoiseOp, items, tfgraph.StepOpts{},
		func(t tfgraph.Tensor) (tfgraph.Tensor, error) {
			vi := t.Value.(volItem)
			return tfgraph.Tensor{Value: volItem{vi.subj, vi.t, denoiseFn(vi.vol)}, Size: t.Size}, nil
		})
	if err != nil {
		return nil, err
	}
	cl.MarkStage("denoise")
	for _, it := range denoised {
		vi := it.Value.(volItem)
		res.Denoised[VolKey(vi.subj, vi.t)] = vi.vol
	}
	return res, nil
}

// simplifiedMask is the paper's "somewhat simplified version of the final
// mask generation": threshold the mean volume at its global mean value.
func simplifiedMask(mean *volume.V3) *volume.V3 {
	t := mean.Summarize().Mean
	out := volume.New3(mean.NX, mean.NY, mean.NZ)
	for i, x := range mean.Data {
		if x > t {
			out.Data[i] = 1
		}
	}
	return out
}
