package neuro

import (
	"fmt"

	"imagebench/internal/nifti"
	"imagebench/internal/npy"
	"imagebench/internal/objstore"
	"imagebench/internal/volume"
)

// decodeNIfTI parses a staged subject NIfTI object.
func decodeNIfTI(obj objstore.Object) (*volume.V4, error) {
	return decodeNIfTIArena(obj, nil)
}

// decodeNIfTIArena is decodeNIfTI with the volumes drawn from arena,
// for pipelines that recycle a subject's input once it is reduced.
func decodeNIfTIArena(obj objstore.Object, arena *volume.Arena) (*volume.V4, error) {
	v4, err := nifti.Decode4Arena(obj.Data, arena)
	if err != nil {
		return nil, fmt.Errorf("neuro: decoding %s: %w", obj.Key, err)
	}
	return v4, nil
}

// decodeNPY parses a staged per-volume .npy object.
func decodeNPY(obj objstore.Object) (*volume.V3, error) {
	v, err := npy.Decode(obj.Data)
	if err != nil {
		return nil, fmt.Errorf("neuro: decoding %s: %w", obj.Key, err)
	}
	return v, nil
}

// npyKeyIDs extracts subject and volume IDs from a staged .npy key of the
// form neuro/npy/subj-SSS/vol-TTT.npy.
func npyKeyIDs(key string) (subject, vol int, err error) {
	var s, t int
	if _, err := fmt.Sscanf(key, "neuro/npy/subj-%03d/vol-%03d.npy", &s, &t); err != nil {
		return 0, 0, fmt.Errorf("neuro: bad npy key %q: %w", key, err)
	}
	return s, t, nil
}

// niftiKeyID extracts the subject ID from a staged NIfTI key.
func niftiKeyID(key string) (subject int, err error) {
	var s int
	if _, err := fmt.Sscanf(key, "neuro/nii/subj-%03d.nii", &s); err != nil {
		return 0, fmt.Errorf("neuro: bad nifti key %q: %w", key, err)
	}
	return s, nil
}
