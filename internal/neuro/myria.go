package neuro

import (
	"fmt"
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/myria"
	"imagebench/internal/objstore"
	"imagebench/internal/synth"
	"imagebench/internal/volume"
)

// MyriaOpts tunes the Myria implementation.
type MyriaOpts struct {
	// WorkersPerNode is the number of Myria worker processes per machine
	// (Fig 13; 0 uses the tuned default of 4).
	WorkersPerNode int
	// Mode selects the memory-management strategy (Fig 15).
	Mode myria.MemoryMode
}

// RunMyria executes the neuroscience pipeline on the Myria engine,
// mirroring the paper's Figure 7 program: ingest into an Images relation,
// a first query computing the mask, a broadcast join, then Python
// UDFs/UDAs for denoise and model fit.
func RunMyria(w *Workload, cl *cluster.Cluster, model *cost.Model, opts MyriaOpts) (*Result, error) {
	if model == nil {
		model = cost.Default()
	}
	eng := myria.New(cl, w.Store, model, myria.Config{WorkersPerNode: opts.WorkersPerNode, Mode: opts.Mode})
	volBytes := synth.PaperVolBytes
	maskBytes := volBytes / 4
	b0 := w.Grad.B0Mask(50)

	images, err := eng.Ingest("Images", "neuro/npy/", func(obj objstore.Object) []myria.Tuple {
		s, t, err := npyKeyIDs(obj.Key)
		if err != nil {
			return nil
		}
		v, err := decodeNPY(obj)
		if err != nil {
			return nil
		}
		return []myria.Tuple{{Key: VolKey(s, t), Value: v, Size: volBytes}}
	})
	if err != nil {
		return nil, err
	}
	cl.MarkStage("ingest")

	// ---- Query 1: the segmentation mask (Step 1N). ----
	q1 := eng.NewQuery()
	b0Rel := q1.ScanWhere(images, func(t myria.Tuple) bool {
		_, vol, err := ParseVolKey(t.Key)
		return err == nil && vol < len(b0) && b0[vol]
	})
	maskRel := q1.GroupByApply(b0Rel,
		func(t myria.Tuple) string {
			s, _, _ := ParseVolKey(t.Key)
			return SubjKey(s)
		},
		myria.PyUDA{Name: "segment", Op: cost.Mean, F: func(key string, group []myria.Tuple) []myria.Tuple {
			vols := sortedVols(group, func(t myria.Tuple) tsVol {
				_, vol, _ := ParseVolKey(t.Key)
				return tsVol{T: vol, Vol: t.Value.(*volume.V3)}
			})
			return []myria.Tuple{{Key: key, Value: Segment(vols), Size: maskBytes}}
		}})
	h1, err := q1.Finish()
	if err != nil {
		return nil, err
	}
	cl.MarkStage("mask")

	masks := make(map[int]*volume.V3, w.Subjects)
	for _, t := range maskRel.Tuples() {
		var s int
		if _, err := fmt.Sscanf(t.Key, "s%03d", &s); err != nil {
			return nil, fmt.Errorf("neuro/myria: bad mask key %q", t.Key)
		}
		masks[s] = t.Value.(*volume.V3)
	}

	// ---- Query 2: broadcast join + denoise + repart + fit. ----
	nz := w.Cfg.NZ
	blocks := volume.Blocks(nz, w.Blocks)
	slabBytes := volBytes / int64(len(blocks))

	type joined struct {
		vol  *volume.V3
		mask *volume.V3
	}
	q2 := eng.NewQuery(h1)
	t1 := q2.Scan(images)
	j := q2.BroadcastJoin("join-mask", t1, maskRel, func(l myria.Tuple, rs []myria.Tuple) []myria.Tuple {
		if len(rs) == 0 {
			return nil
		}
		return []myria.Tuple{{
			Key:   l.Key,
			Value: joined{vol: l.Value.(*volume.V3), mask: rs[0].Value.(*volume.V3)},
			Size:  l.Size + rs[0].Size,
		}}
	})
	den := q2.Apply(j, myria.PyUDF{Name: "Denoise", Op: cost.Denoise, F: func(t myria.Tuple) []myria.Tuple {
		jv := t.Value.(joined)
		return []myria.Tuple{{Key: t.Key, Value: joined{vol: Denoise(jv.vol, jv.mask), mask: jv.mask}, Size: t.Size}}
	}})
	repart := q2.Apply(den, myria.PyUDF{Name: "repart", Op: cost.Regroup, F: func(t myria.Tuple) []myria.Tuple {
		s, tv, err := ParseVolKey(t.Key)
		if err != nil {
			return nil
		}
		jv := t.Value.(joined)
		out := make([]myria.Tuple, 0, len(blocks))
		for bi, b := range blocks {
			out = append(out, myria.Tuple{
				Key:   fmt.Sprintf("%s/b%02d/t%03d", SubjKey(s), bi, tv),
				Value: blockPiece{T: tv, Block: b, Slab: volume.ExtractBlock(jv.vol, b)},
				Size:  slabBytes,
			})
		}
		return out
	}})
	fit := q2.GroupByApply(repart,
		func(t myria.Tuple) string { return t.Key[:len("s000/b00")] },
		myria.PyUDA{Name: "fitmodel", Op: cost.FitDTM, F: func(key string, group []myria.Tuple) []myria.Tuple {
			var s int
			if _, err := fmt.Sscanf(key, "s%03d/", &s); err != nil {
				return nil
			}
			pieces := make([]blockPiece, 0, len(group))
			for _, t := range group {
				pieces = append(pieces, t.Value.(blockPiece))
			}
			sort.Slice(pieces, func(i, j int) bool { return pieces[i].T < pieces[j].T })
			slabs := make([]*volume.V3, 0, len(pieces))
			for _, pc := range pieces {
				slabs = append(slabs, pc.Slab)
			}
			maskSlab := volume.ExtractBlock(masks[s], pieces[0].Block)
			fa, err := FitBlock(w.Grad, slabs, maskSlab)
			if err != nil {
				return nil
			}
			return []myria.Tuple{{Key: key, Value: faSlab{Block: pieces[0].Block, FA: fa}, Size: slabBytes}}
		}})
	faTuples, _ := q2.Collect(fit)
	if _, err := q2.Finish(); err != nil {
		return nil, err
	}
	cl.MarkStage("fit")
	return assembleFA(w, masks, faTuples, func(t myria.Tuple) (string, any) { return t.Key, t.Value })
}
