// Streaming plumbing for the reference pipeline: the fused Step 2N→3N
// stage composition. This is harness-side memory machinery, not
// per-system pipeline code, so it lives outside neuro.go (the file
// Table 1 measures as the reference implementation).

package neuro

import (
	"context"
	"fmt"

	"imagebench/internal/dmri"
	"imagebench/internal/imaging"
	"imagebench/internal/volume"
)

// fitRows is the slab height (in z-planes) of the fused denoise→fit
// stream in ReferenceSubject. Any value yields bit-identical results;
// it only sets the streaming granularity.
const fitRows = 1

// ReferenceSubject runs the full pipeline on one subject as a stage
// composition: Step 1N materializes the mask, then Steps 2N and 3N are
// fused — per-volume denoise stages stream z-slab blocks (pooled
// buffers, computed lazily) into the model fit, which consumes one
// slab of every volume at a time and releases it. The denoised series
// is never materialized, so the subject's working set is its input
// plus O(T · fitRows) planes; every voxel is computed by the same
// expression in the same order as the materialized form, so mask and
// FA are bit-identical to it.
func ReferenceSubject(g *dmri.GradTable, data *volume.V4) (*SubjectResult, error) {
	// Step 1N: segmentation.
	b0 := data.Select(g.B0Mask(50))
	mask := Segment(b0.Vols)
	// Steps 2N+3N: one denoise stream per volume, fit slab by slab.
	ctx := context.Background()
	nx, ny, nz := data.Shape()
	dens := make([]volume.Stream, data.T())
	for t, v := range data.Vols {
		dens[t] = imaging.NLMeans3Stream(ctx, v, mask, DenoiseOpts, volume.Scratch, fitRows)
	}
	fa := volume.New3(nx, ny, nz)
	slabs := make([]*volume.V3, data.T())
	blocks := make([]volume.BlockVol, data.T())
	for _, b := range volume.TileZ(nz, fitRows) {
		for t, d := range dens {
			bv, ok := d.Next()
			if !ok || bv.B != b {
				for _, d := range dens {
					volume.Drain(d)
				}
				return nil, fmt.Errorf("neuro: denoise stream out of step at z=%d", b.Z0)
			}
			blocks[t], slabs[t] = bv, bv.V
		}
		faSlab, err := FitBlock(g, slabs, mask.Slab(b))
		for t := range blocks {
			blocks[t].Release()
		}
		if err != nil {
			for _, d := range dens {
				volume.Drain(d)
			}
			return nil, err
		}
		volume.InsertBlock(fa, b, faSlab)
	}
	return &SubjectResult{Mask: mask, FA: fa}, nil
}
