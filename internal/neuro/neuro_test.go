package neuro

import (
	"math"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/synth"
	"imagebench/internal/volume"
)

func testCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.WorkersPerNode = 4
	return cluster.New(cfg)
}

func smallWorkload(t *testing.T, subjects int) *Workload {
	t.Helper()
	cfg := synth.DefaultNeuro(subjects)
	cfg.NX, cfg.NY, cfg.NZ, cfg.T, cfg.B0 = 8, 8, 10, 8, 2
	w, err := NewWorkloadCfg(cfg)
	if err != nil {
		t.Fatalf("NewWorkloadCfg: %v", err)
	}
	return w
}

func TestReferencePipeline(t *testing.T) {
	w := smallWorkload(t, 2)
	res, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	if len(res.Subjects) != 2 {
		t.Fatalf("got %d subjects, want 2", len(res.Subjects))
	}
	for s, sr := range res.Subjects {
		frac := float64(sr.Mask.Summarize().NonZero) / float64(sr.Mask.Len())
		if frac < 0.05 || frac > 0.8 {
			t.Errorf("subject %d: mask fraction %.2f outside plausible range", s, frac)
		}
		st := sr.FA.Summarize()
		if st.Max <= 0 || st.Max > 1 {
			t.Errorf("subject %d: FA max %.3f outside (0,1]", s, st.Max)
		}
		if st.Min < 0 {
			t.Errorf("subject %d: negative FA %.3f", s, st.Min)
		}
	}
}

func TestFAReflectsAnisotropy(t *testing.T) {
	// The synthetic phantom has an anisotropic band through the middle
	// (high FA) and isotropic brain elsewhere (low FA); the fitted FA map
	// must reflect that structure.
	w := smallWorkload(t, 1)
	res, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	fa := res.Subjects[0].FA
	cx, cy, cz := fa.NX/2, fa.NY/2, fa.NZ/2
	band := fa.At(cx, cy, cz)         // center of the anisotropic band
	iso := fa.At(cx, 1+fa.NY*3/4, cz) // isotropic region, still in brain
	if band < 0.4 {
		t.Errorf("band FA = %.3f, want >= 0.4", band)
	}
	if iso > band {
		t.Errorf("isotropic FA %.3f not below band FA %.3f", iso, band)
	}
}

func resultsEqual(t *testing.T, name string, got, want *Result, tol float64) {
	t.Helper()
	if len(got.Subjects) != len(want.Subjects) {
		t.Fatalf("%s: got %d subjects, want %d", name, len(got.Subjects), len(want.Subjects))
	}
	for s, ws := range want.Subjects {
		gs, ok := got.Subjects[s]
		if !ok {
			t.Fatalf("%s: missing subject %d", name, s)
		}
		if d := volume.MaxAbsDiff(gs.Mask, ws.Mask); d > 0 {
			t.Errorf("%s: subject %d mask differs by %g", name, s, d)
		}
		if d := volume.MaxAbsDiff(gs.FA, ws.FA); d > tol {
			t.Errorf("%s: subject %d FA differs by %g (tol %g)", name, s, d, tol)
		}
	}
}

func TestSparkMatchesReference(t *testing.T) {
	w := smallWorkload(t, 2)
	ref, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	got, err := RunSpark(w, testCluster(), nil, SparkOpts{Partitions: 8})
	if err != nil {
		t.Fatalf("RunSpark: %v", err)
	}
	resultsEqual(t, "spark", got, ref, 1e-9)
}

func TestMyriaMatchesReference(t *testing.T) {
	w := smallWorkload(t, 2)
	ref, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	got, err := RunMyria(w, testCluster(), nil, MyriaOpts{})
	if err != nil {
		t.Fatalf("RunMyria: %v", err)
	}
	resultsEqual(t, "myria", got, ref, 1e-9)
}

func TestDaskMatchesReference(t *testing.T) {
	w := smallWorkload(t, 2)
	ref, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	got, err := RunDask(w, testCluster(), nil)
	if err != nil {
		t.Fatalf("RunDask: %v", err)
	}
	resultsEqual(t, "dask", got, ref, 1e-9)
}

func TestSciDBProducesMasksAndDenoised(t *testing.T) {
	w := smallWorkload(t, 1)
	ref, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	got, err := RunSciDB(w, testCluster(), nil, SciDBAio)
	if err != nil {
		t.Fatalf("RunSciDB: %v", err)
	}
	// The native Step 1N path computes the same mask as the reference.
	if d := volume.MaxAbsDiff(got.Masks[0], ref.Subjects[0].Mask); d > 0 {
		t.Errorf("scidb mask differs by %g", d)
	}
	// stream() denoising is unmasked: same shape, every voxel processed.
	if len(got.Denoised) != w.Cfg.T {
		t.Fatalf("got %d denoised volumes, want %d", len(got.Denoised), w.Cfg.T)
	}
	for k, v := range got.Denoised {
		if v.NX != w.Cfg.NX || v.NY != w.Cfg.NY || v.NZ != w.Cfg.NZ {
			t.Errorf("denoised %s has wrong shape", k)
		}
	}
}

func TestTFProducesMasksAndDenoised(t *testing.T) {
	w := smallWorkload(t, 2)
	got, err := RunTF(w, testCluster(), nil, TFOpts{})
	if err != nil {
		t.Fatalf("RunTF: %v", err)
	}
	if len(got.Masks) != 2 {
		t.Fatalf("got %d masks, want 2", len(got.Masks))
	}
	for s, m := range got.Masks {
		frac := float64(m.Summarize().NonZero) / float64(m.Len())
		if frac <= 0 || frac >= 1 {
			t.Errorf("subject %d: simplified mask fraction %.2f degenerate", s, frac)
		}
	}
	if len(got.Denoised) != 2*w.Cfg.T {
		t.Fatalf("got %d denoised volumes, want %d", len(got.Denoised), 2*w.Cfg.T)
	}
}

func TestDenoiseReducesNoise(t *testing.T) {
	// Use a larger phantom so the brain has a genuine interior: at tiny
	// sizes every masked voxel borders background, where non-local means
	// legitimately sharpens the edge instead of smoothing.
	cfg := synth.DefaultNeuro(1)
	cfg.NX, cfg.NY, cfg.NZ, cfg.T, cfg.B0 = 16, 16, 16, 4, 2
	w, err := NewWorkloadCfg(cfg)
	if err != nil {
		t.Fatalf("NewWorkloadCfg: %v", err)
	}
	obj, err := w.Store.Get(synth.NeuroKeyNIfTI(0))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	data, err := decodeNIfTI(obj)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b0 := data.Select(w.Grad.B0Mask(50))
	mask := Segment(b0.Vols)
	interior := erode(mask, 2)
	if interior.Summarize().NonZero == 0 {
		t.Fatal("eroded mask is empty; enlarge the phantom")
	}
	v := data.Vols[0]
	den := Denoise(v, mask)
	// Inside the brain interior, denoising must reduce local variance.
	varBefore := maskedLocalVariance(v, interior)
	varAfter := maskedLocalVariance(den, interior)
	if varAfter >= varBefore {
		t.Errorf("denoise did not reduce interior local variance: %.1f -> %.1f", varBefore, varAfter)
	}
}

// erode returns mask shrunk by r voxels: a voxel stays set only if its
// whole (2r+1)^3 neighbourhood is inside the mask and the volume.
func erode(mask *volume.V3, r int) *volume.V3 {
	out := volume.New3(mask.NX, mask.NY, mask.NZ)
	for z := 0; z < mask.NZ; z++ {
		for y := 0; y < mask.NY; y++ {
		next:
			for x := 0; x < mask.NX; x++ {
				for dz := -r; dz <= r; dz++ {
					for dy := -r; dy <= r; dy++ {
						for dx := -r; dx <= r; dx++ {
							if !mask.In(x+dx, y+dy, z+dz) || mask.At(x+dx, y+dy, z+dz) == 0 {
								continue next
							}
						}
					}
				}
				out.Set(x, y, z, 1)
			}
		}
	}
	return out
}

// maskedLocalVariance measures the mean squared difference between
// neighbouring voxels inside the mask — a proxy for noise level.
func maskedLocalVariance(v, mask *volume.V3) float64 {
	var sum float64
	var n int
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 1; x < v.NX; x++ {
				if mask.At(x, y, z) == 0 || mask.At(x-1, y, z) == 0 {
					continue
				}
				d := v.At(x, y, z) - v.At(x-1, y, z)
				sum += d * d
				n++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func TestWorkloadSizes(t *testing.T) {
	w := smallWorkload(t, 3)
	wantInput := 3 * w.Cfg.SubjectModelBytes()
	if got := w.InputModelBytes(); got != wantInput {
		t.Errorf("InputModelBytes = %d, want %d", got, wantInput)
	}
	if got := w.LargestIntermediateModelBytes(); got != 2*wantInput {
		t.Errorf("LargestIntermediateModelBytes = %d, want %d", got, 2*wantInput)
	}
}
