package neuro

import (
	"fmt"

	"imagebench/internal/afl"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/imaging"
	"imagebench/internal/myria"
	"imagebench/internal/myrial"
	"imagebench/internal/objstore"
	"imagebench/internal/scidb"
	"imagebench/internal/synth"
	"imagebench/internal/volume"
)

// This file runs the use case through the query-language frontends the
// paper's implementations were actually written in: Step 1N as an AFL
// program against the SciDB engine (the paper's Figure 5, which uses
// SciDB-py's compress/mean — AFL's filter/aggregate), and Steps 1N+2N as
// the MyriaL programs of Section 4.3 (Figure 7) against the Myria
// engine. Outputs are validated against the reference pipeline by the
// tests.

// RunSciDBAFL executes Step 1N as an AFL program:
//
//	store(aggregate(filter(scan(Images), vol < B0), meanvol(img), subj), mean_b0);
//	store(apply(scan(mean_b0), otsu), Masks)
//
// The vol dimension is not aligned with the chunk layout (it is the
// fourth array dimension), so the filter pays chunk reorganization,
// exactly as RunSciDB's native path does. It returns the per-subject
// masks.
func RunSciDBAFL(w *Workload, cl *cluster.Cluster, model *cost.Model, mode SciDBIngestMode) (map[int]*volume.V3, error) {
	if model == nil {
		model = cost.Default()
	}
	eng := scidb.New(cl, w.Store, model, scidb.DefaultConfig())
	if _, err := SciDBIngest(w, eng, mode); err != nil {
		return nil, err
	}

	env := afl.NewEnv()
	env.DefineDims(func(c scidb.Chunk) map[string]float64 {
		s, t, err := ParseVolKey(c.Coords)
		if err != nil {
			return nil
		}
		return map[string]float64{"subj": float64(s), "vol": float64(t)}
	}, "subj")
	env.DefineAggregate("meanvol", cost.Mean, func(key string, group []scidb.Chunk) scidb.Chunk {
		vols := make([]*volume.V3, 0, len(group))
		for _, c := range group {
			vols = append(vols, c.Value.(*volume.V3))
		}
		return scidb.Chunk{Coords: key, Value: volume.Mean3(vols), Size: synth.PaperVolBytes}
	})
	env.DefineKernel("otsu", cost.Otsu, func(c scidb.Chunk) scidb.Chunk {
		mean := c.Value.(*volume.V3)
		smoothed := imaging.MedianFilter3(mean, 1)
		return scidb.Chunk{Coords: c.Coords, Value: imaging.OtsuMask(smoothed), Size: synth.PaperVolBytes / 4}
	})

	program := fmt.Sprintf(`
		store(aggregate(filter(scan(Images), vol < %d), meanvol(img), subj), mean_b0);
		store(apply(scan(mean_b0), otsu), Masks)
	`, w.Cfg.B0)
	res, err := afl.Run(eng, program, env)
	if err != nil {
		return nil, err
	}
	masksArr := res.Stored["Masks"]
	if h := masksArr.Done(); h.Err != nil {
		return nil, h.Err
	}
	masks := make(map[int]*volume.V3, w.Subjects)
	for _, c := range masksArr.Chunks {
		var s int
		if _, err := fmt.Sscanf(c.Coords, "subj=%d/", &s); err != nil {
			return nil, fmt.Errorf("neuro/afl: bad mask coords %q", c.Coords)
		}
		masks[s] = c.Value.(*volume.V3)
	}
	return masks, nil
}

// MyriaLResult holds the output of the MyriaL-frontend implementation.
type MyriaLResult struct {
	Masks    map[int]*volume.V3
	Denoised map[string]*volume.V3 // VolKey → denoised volume
}

// imgSchema/maskSchema are the relational schemas of the paper's Images
// and Mask relations (Section 4.3: "each tuple consisting of subject ID,
// image ID and image volume", the volume a BLOB).
var (
	myrialImgSchema  = myrial.Schema{Key: []string{"subjId", "imgId"}, Cols: []string{"subjId", "imgId", "img"}}
	myrialMaskSchema = myrial.Schema{Key: []string{"subjId"}, Cols: []string{"subjId", "mask"}}
)

// MyrialIngest loads the staged per-volume arrays into the Images base
// relation with the paper's schema.
func MyrialIngest(w *Workload, eng *myria.Engine) (*myria.Relation, error) {
	return eng.Ingest("Images", "neuro/npy/", func(o objstore.Object) []myria.Tuple {
		s, t, err := npyKeyIDs(o.Key)
		if err != nil {
			return nil
		}
		v, err := decodeNPY(o)
		if err != nil {
			return nil
		}
		row := myrial.Row{
			"subjId": {V: s},
			"imgId":  {V: t},
			"img":    {V: v, Size: synth.PaperVolBytes},
		}
		return []myria.Tuple{myrialImgSchema.TupleOf(row)}
	})
}

// RunMyriaL executes Steps 1N and 2N as the paper's two MyriaL queries:
// the first computes the per-subject mask (filter → grouped segmentation
// UDA), the second joins it back and denoises every volume with the
// registered Python UDF — the program of Figure 7, run through the real
// MyriaL frontend.
func RunMyriaL(w *Workload, cl *cluster.Cluster, model *cost.Model) (*MyriaLResult, error) {
	eng := myria.New(cl, w.Store, model, myria.DefaultConfig())
	images, err := MyrialIngest(w, eng)
	if err != nil {
		return nil, err
	}

	env := myrial.NewEnv()
	env.DefineTable("Images", myrialImgSchema, images)
	env.DefineUDA("SegmentVols", cost.Mean, func(group [][]myrial.Cell) myrial.Cell {
		vols := make([]*volume.V3, 0, len(group))
		for _, args := range group {
			vols = append(vols, args[0].V.(*volume.V3))
		}
		return myrial.Cell{V: Segment(vols), Size: synth.PaperVolBytes / 4}
	})
	env.DefineUDF("Denoise", cost.Denoise, func(args []myrial.Cell) []myrial.Cell {
		v := args[0].V.(*volume.V3)
		m := args[1].V.(*volume.V3)
		den := Denoise(v, m)
		return []myrial.Cell{{V: den, Size: synth.PaperVolBytes}}
	})

	// Query 1: the mask (Step 1N).
	maskProgram := fmt.Sprintf(`
		T1 = SCAN(Images);
		B0 = [SELECT * FROM T1 WHERE T1.imgId < %d];
		M  = [SELECT B0.subjId, PYUDA(SegmentVols, B0.img) AS mask FROM B0];
		STORE(M, Mask);
	`, w.Cfg.B0)
	res1, err := myrial.Run(eng, maskProgram, env)
	if err != nil {
		return nil, err
	}
	env.DefineTable("Mask", myrialMaskSchema, res1.Stored["Mask"])

	// Query 2: Figure 7 — broadcast-join the mask and denoise.
	const denoiseProgram = `
		T1 = SCAN(Images);
		T2 = SCAN(Mask);
		Joined = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask
		          FROM T1, T2
		          WHERE T1.subjId = T2.subjId];
		Denoised = [FROM Joined EMIT
		            PYUDF(Denoise, img, mask) AS img, subjId, imgId];
		STORE(Denoised, DenoisedImages);
	`
	res2, err := myrial.Run(eng, denoiseProgram, env, res1.Done)
	if err != nil {
		return nil, err
	}

	out := &MyriaLResult{Masks: make(map[int]*volume.V3), Denoised: make(map[string]*volume.V3)}
	for _, r := range myrial.Rows(res1.Stored["Mask"]) {
		out.Masks[r["subjId"].V.(int)] = r["mask"].V.(*volume.V3)
	}
	for _, r := range myrial.Rows(res2.Stored["DenoisedImages"]) {
		key := VolKey(r["subjId"].V.(int), r["imgId"].V.(int))
		out.Denoised[key] = r["img"].V.(*volume.V3)
	}
	return out, nil
}
