package neuro

import (
	"fmt"
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/spark"
	"imagebench/internal/synth"
	"imagebench/internal/volume"
)

// SparkOpts tunes the Spark implementation.
type SparkOpts struct {
	// Partitions is the number of input data partitions; 0 uses Spark's
	// HDFS-block-style default (few, large partitions — Fig 14).
	Partitions int
	// CacheInput caches the input RDD in memory so the denoise query does
	// not recompute the download (Section 5.3.3).
	CacheInput bool
}

// blockPiece is one z-slab of one volume, the unit the repart flatmap
// emits and the model fit regroups (keyed by subject/block).
type blockPiece struct {
	T     int // gradient-table index, for regrouping order
	Block volume.Block
	Slab  *volume.V3
}

// faSlab is a fitted FA slab for one block.
type faSlab struct {
	Block volume.Block
	FA    *volume.V3
}

// tsVol is a volume tagged with its gradient-table index, carried through
// grouping so aggregation order is deterministic (floating-point sums are
// order-sensitive).
type tsVol struct {
	T   int
	Vol *volume.V3
}

// sortedVols extracts tsVol values from grouped records and returns the
// volumes in gradient-table order.
func sortedVols[T any](items []T, get func(T) tsVol) []*volume.V3 {
	tv := make([]tsVol, 0, len(items))
	for _, it := range items {
		tv = append(tv, get(it))
	}
	sort.Slice(tv, func(i, j int) bool { return tv[i].T < tv[j].T })
	vols := make([]*volume.V3, len(tv))
	for i, v := range tv {
		vols[i] = v.Vol
	}
	return vols
}

// RunSpark executes the neuroscience pipeline on the Spark engine,
// mirroring the paper's Figure 6 program: a mask query with collect +
// broadcast, then map(denoise) → flatMap(repart) → groupBy(subject,block)
// → map(fitmodel).
func RunSpark(w *Workload, cl *cluster.Cluster, model *cost.Model, opts SparkOpts) (*Result, error) {
	if model == nil {
		model = cost.Default()
	}
	sess := spark.NewSession(cl, w.Store, model)
	volBytes := synth.PaperVolBytes
	maskBytes := volBytes / 4
	b0 := w.Grad.B0Mask(50)

	decode := func(obj objstore.Object) []spark.Pair {
		s, t, err := npyKeyIDs(obj.Key)
		if err != nil {
			return nil
		}
		v, err := decodeNPY(obj)
		if err != nil {
			return nil
		}
		return []spark.Pair{{Key: VolKey(s, t), Value: v, Size: volBytes}}
	}
	img := sess.Objects("neuro/npy/", opts.Partitions, decode)
	if opts.CacheInput {
		img.Cache()
		if _, err := img.Materialize(); err != nil {
			return nil, err
		}
		cl.MarkStage("ingest")
	}

	// ---- Query 1: Step 1N, the segmentation mask per subject. ----
	b0RDD := img.Map(spark.UDF{Name: "filter-b0", Op: cost.Filter, F: func(p spark.Pair) []spark.Pair {
		s, t, err := ParseVolKey(p.Key)
		if err != nil || t >= len(b0) || !b0[t] {
			return nil
		}
		return []spark.Pair{{Key: SubjKey(s), Value: tsVol{T: t, Vol: p.Value.(*volume.V3)}, Size: p.Size}}
	}})
	maskRDD := b0RDD.GroupByKey("segment", cost.Mean, 0, func(key string, values []spark.Pair) []spark.Pair {
		return []spark.Pair{{Key: key, Value: Segment(sortedVols(values, func(p spark.Pair) tsVol { return p.Value.(tsVol) })), Size: maskBytes}}
	})
	maskPairs, maskDone, err := maskRDD.Collect()
	if err != nil {
		return nil, err
	}
	cl.MarkStage("mask")
	masks := make(map[int]*volume.V3, w.Subjects)
	for _, p := range maskPairs {
		var s int
		if _, err := fmt.Sscanf(p.Key, "s%03d", &s); err != nil {
			return nil, fmt.Errorf("neuro/spark: bad mask key %q", p.Key)
		}
		masks[s] = p.Value.(*volume.V3)
	}
	bcast := sess.Broadcast(maskBytes*int64(len(masks)), maskDone)

	// ---- Query 2: Steps 2N + 3N over the broadcast mask. ----
	nz := w.Cfg.NZ
	blocks := volume.Blocks(nz, w.Blocks)
	slabBytes := volBytes / int64(len(blocks))

	denoised := img.Map(spark.UDF{Name: "denoise", Op: cost.Denoise, F: func(p spark.Pair) []spark.Pair {
		s, _, err := ParseVolKey(p.Key)
		if err != nil {
			return nil
		}
		den := Denoise(p.Value.(*volume.V3), masks[s])
		return []spark.Pair{{Key: p.Key, Value: den, Size: p.Size}}
	}}).After(bcast)

	repart := denoised.Map(spark.UDF{Name: "repart", Op: cost.Regroup, F: func(p spark.Pair) []spark.Pair {
		s, t, err := ParseVolKey(p.Key)
		if err != nil {
			return nil
		}
		v := p.Value.(*volume.V3)
		out := make([]spark.Pair, 0, len(blocks))
		for bi, b := range blocks {
			out = append(out, spark.Pair{
				Key:   fmt.Sprintf("%s/b%02d", SubjKey(s), bi),
				Value: blockPiece{T: t, Block: b, Slab: volume.ExtractBlock(v, b)},
				Size:  slabBytes,
			})
		}
		return out
	}})

	fit := repart.GroupByKey("fitmodel", cost.FitDTM, 0, func(key string, values []spark.Pair) []spark.Pair {
		var s int
		if _, err := fmt.Sscanf(key, "s%03d/", &s); err != nil {
			return nil
		}
		pieces := make([]blockPiece, 0, len(values))
		for _, v := range values {
			pieces = append(pieces, v.Value.(blockPiece))
		}
		sort.Slice(pieces, func(i, j int) bool { return pieces[i].T < pieces[j].T })
		slabs := make([]*volume.V3, 0, len(pieces))
		for _, pc := range pieces {
			slabs = append(slabs, pc.Slab)
		}
		maskSlab := volume.ExtractBlock(masks[s], pieces[0].Block)
		fa, err := FitBlock(w.Grad, slabs, maskSlab)
		if err != nil {
			return nil
		}
		return []spark.Pair{{Key: key, Value: faSlab{Block: pieces[0].Block, FA: fa}, Size: slabBytes}}
	}).After(bcast)

	faPairs, _, err := fit.Collect()
	if err != nil {
		return nil, err
	}
	cl.MarkStage("fit")
	return assembleFA(w, masks, faPairs, func(p spark.Pair) (string, any) { return p.Key, p.Value })
}

// assembleFA reassembles collected FA slabs (keyed sSSS/bBB) into
// per-subject FA volumes.
func assembleFA[T any](w *Workload, masks map[int]*volume.V3, items []T, get func(T) (string, any)) (*Result, error) {
	res := &Result{Subjects: make(map[int]*SubjectResult)}
	for s, m := range masks {
		res.Subjects[s] = &SubjectResult{
			Subject: s,
			Mask:    m,
			FA:      volume.New3(w.Cfg.NX, w.Cfg.NY, w.Cfg.NZ),
		}
	}
	for _, it := range items {
		key, val := get(it)
		var s, b int
		if _, err := fmt.Sscanf(key, "s%03d/b%02d", &s, &b); err != nil {
			return nil, fmt.Errorf("neuro: bad fit key %q", key)
		}
		slab, ok := val.(faSlab)
		if !ok {
			return nil, fmt.Errorf("neuro: fit value for %q is %T", key, val)
		}
		sr, ok := res.Subjects[s]
		if !ok {
			return nil, fmt.Errorf("neuro: FA slab for unknown subject %d", s)
		}
		volume.InsertBlock(sr.FA, slab.Block, slab.FA)
	}
	return res, nil
}
