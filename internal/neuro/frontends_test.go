package neuro

import (
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/imaging"
	"imagebench/internal/synth"
	"imagebench/internal/volume"
)

func frontendCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	return cluster.New(cfg)
}

// TestRunSciDBAFLMatchesReference validates that Step 1N expressed as an
// AFL program produces the reference masks for every subject.
func TestRunSciDBAFLMatchesReference(t *testing.T) {
	w, err := NewWorkload(2)
	if err != nil {
		t.Fatal(err)
	}
	masks, err := RunSciDBAFL(w, frontendCluster(), nil, SciDBAio)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Reference(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(masks) != 2 {
		t.Fatalf("got %d masks, want 2", len(masks))
	}
	for s, mask := range masks {
		want := ref.Subjects[s].Mask
		if d := volume.MaxAbsDiff(mask, want); d != 0 {
			t.Errorf("subject %d: AFL mask differs from reference by %g", s, d)
		}
	}
}

// TestRunSciDBAFLMatchesNativePath validates the AFL program against the
// direct engine-API implementation (RunSciDB): same masks, either path.
func TestRunSciDBAFLMatchesNativePath(t *testing.T) {
	w, err := NewWorkload(1)
	if err != nil {
		t.Fatal(err)
	}
	aflMasks, err := RunSciDBAFL(w, frontendCluster(), nil, SciDBAio)
	if err != nil {
		t.Fatal(err)
	}
	native, err := RunSciDB(w, frontendCluster(), nil, SciDBAio)
	if err != nil {
		t.Fatal(err)
	}
	for s, m := range aflMasks {
		if d := volume.MaxAbsDiff(m, native.Masks[s]); d != 0 {
			t.Errorf("subject %d: AFL vs native mask differ by %g", s, d)
		}
	}
}

// TestRunMyriaLMatchesReference validates the two-query MyriaL program
// (mask, then Figure 7's join + denoise) against the reference pipeline.
func TestRunMyriaLMatchesReference(t *testing.T) {
	w, err := NewWorkload(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMyriaL(w, frontendCluster(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Reference(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Masks) != 2 {
		t.Fatalf("got %d masks, want 2", len(res.Masks))
	}
	for s, m := range res.Masks {
		if d := volume.MaxAbsDiff(m, ref.Subjects[s].Mask); d != 0 {
			t.Errorf("subject %d: MyriaL mask differs from reference by %g", s, d)
		}
	}
	if want := 2 * w.Cfg.T; len(res.Denoised) != want {
		t.Fatalf("got %d denoised volumes, want %d", len(res.Denoised), want)
	}
	// Spot-check denoised volumes against direct denoising with the
	// reference mask.
	for s := 0; s < 2; s++ {
		for _, tvol := range []int{0, w.Cfg.T - 1} {
			key := VolKey(s, tvol)
			got := res.Denoised[key]
			if got == nil {
				t.Fatalf("missing denoised volume %s", key)
			}
			orig, err := loadVolume(w, s, tvol)
			if err != nil {
				t.Fatal(err)
			}
			want := Denoise(orig, ref.Subjects[s].Mask)
			if d := volume.MaxAbsDiff(got, want); d != 0 {
				t.Errorf("%s: MyriaL denoise differs by %g", key, d)
			}
		}
	}
}

// loadVolume fetches one staged volume from the store.
func loadVolume(w *Workload, subj, vol int) (*volume.V3, error) {
	obj, err := w.Store.Get(synth.NeuroKeyNPY(subj, vol))
	if err != nil {
		return nil, err
	}
	return decodeNPY(obj)
}

// TestMyriaLAdvancesVirtualTime sanity-checks that the frontend charges
// cluster time (queries are not free).
func TestMyriaLAdvancesVirtualTime(t *testing.T) {
	w, err := NewWorkload(1)
	if err != nil {
		t.Fatal(err)
	}
	cl := frontendCluster()
	if _, err := RunMyriaL(w, cl, nil); err != nil {
		t.Fatal(err)
	}
	if cl.Makespan() <= 0 {
		t.Error("MyriaL run charged no virtual time")
	}
	if cl.Tasks() < 10 {
		t.Errorf("MyriaL run scheduled only %d tasks", cl.Tasks())
	}
}

// TestRunTFConvDenoise exercises the paper's convolutional rewrite of
// Step 2N: the denoised volumes equal a direct Gaussian smoothing.
func TestRunTFConvDenoise(t *testing.T) {
	w, err := NewWorkload(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTF(w, frontendCluster(), nil, TFOpts{ConvDenoise: true, ConvSigma: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Denoised) != w.Cfg.T {
		t.Fatalf("got %d denoised volumes, want %d", len(res.Denoised), w.Cfg.T)
	}
	orig, err := loadVolume(w, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := imaging.GaussianSmooth3(orig, 0.8)
	got := res.Denoised[VolKey(0, 0)]
	if d := volume.MaxAbsDiff(got, want); d != 0 {
		t.Errorf("conv denoise differs from direct smoothing by %g", d)
	}
	// The conv rewrite is cruder than NL-means: it must differ from the
	// reference denoiser (it is an approximation, not a reimplementation).
	nl := Denoise(orig, nil)
	if volume.MaxAbsDiff(got, nl) == 0 {
		t.Error("conv denoise unexpectedly identical to non-local means")
	}
}
