package neuro

import (
	"fmt"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/dask"
	"imagebench/internal/imaging"
	"imagebench/internal/objstore"
	"imagebench/internal/synth"
	"imagebench/internal/volume"
	"imagebench/internal/vtime"
)

// RunDask executes the neuroscience pipeline on the Dask engine,
// mirroring the paper's Figure 8 program: delayed downloadAndFilter per
// subject, a barrier counting volumes, per-block means reassembled into
// median_otsu, then per-volume denoise and per-block model fits, computed
// with a single final barrier. Each subject's chain is independent, so the
// dynamic scheduler pipelines steps across subjects — the behaviour behind
// Dask's Fig 10c crossover.
func RunDask(w *Workload, cl *cluster.Cluster, model *cost.Model) (*Result, error) {
	if model == nil {
		model = cost.Default()
	}
	sess := dask.NewSession(cl, w.Store, model)
	volBytes := synth.PaperVolBytes
	maskBytes := volBytes / 4
	b0 := w.Grad.B0Mask(50)
	nz := w.Cfg.NZ
	blocks := volume.Blocks(nz, w.Blocks)
	slabBytes := volBytes / int64(len(blocks))

	// Download each subject to a pinned machine: Dask's scheduler does
	// not know download sizes in advance, so the paper assigns subjects
	// to nodes explicitly (Section 5.2.1).
	fetch := make([]*dask.Delayed, w.Subjects)
	for s := 0; s < w.Subjects; s++ {
		fetch[s] = sess.Fetch(synth.NeuroKeyNIfTI(s), s%cl.Nodes(), func(obj objstore.Object) (any, int64, error) {
			v4, err := decodeNIfTI(obj)
			if err != nil {
				return nil, 0, err
			}
			return v4, w.Cfg.SubjectModelBytes(), nil
		})
	}
	// The paper's first barrier: evaluate numVols for every subject.
	if _, err := sess.Compute(fetch...); err != nil {
		return nil, err
	}
	cl.MarkStage("fetch")

	var roots []*dask.Delayed
	maskNodes := make([]*dask.Delayed, w.Subjects)
	faNodes := make(map[string]*dask.Delayed) // sSSS/bBB → fa slab
	b0Bytes := volBytes * int64(w.Cfg.B0)
	for s := 0; s < w.Subjects; s++ {
		s := s
		// Per-block partial means over the b0 volumes, reassembled, then
		// median_otsu (Figure 8 lines 8–11). Tasks slice the fetched
		// subject directly, as Dask's fused graph does.
		var means []*dask.Delayed
		for bi, b := range blocks {
			b := b
			means = append(means, sess.DelayedCost(
				fmt.Sprintf("mean/%s/b%02d", SubjKey(s), bi),
				func(int64) vtime.Duration {
					return model.AlgTime(cost.Mean, b0Bytes) / vtime.Duration(len(blocks))
				},
				[]*dask.Delayed{fetch[s]},
				func(args []any) (any, int64, error) {
					v4 := args[0].(*volume.V4).Select(b0)
					slabs := make([]*volume.V3, v4.T())
					for i, v := range v4.Vols {
						slabs[i] = volume.ExtractBlock(v, b)
					}
					return volume.Mean3(slabs), slabBytes, nil
				}))
		}
		reassembled := sess.DelayedCost("reassemble/"+SubjKey(s),
			func(int64) vtime.Duration { return 0 },
			means,
			func(args []any) (any, int64, error) {
				mean := volume.New3(w.Cfg.NX, w.Cfg.NY, nz)
				for i, a := range args {
					volume.InsertBlock(mean, blocks[i], a.(*volume.V3))
				}
				return mean, volBytes, nil
			})
		mask := sess.Delayed("median_otsu/"+SubjKey(s), cost.Otsu,
			[]*dask.Delayed{reassembled},
			func(args []any) (any, int64, error) {
				mean := args[0].(*volume.V3)
				return segmentFromMean(mean), maskBytes, nil
			})
		maskNodes[s] = mask

		// Denoise per volume, then fit per block.
		den := make([]*dask.Delayed, w.Cfg.T)
		for t := 0; t < w.Cfg.T; t++ {
			t := t
			den[t] = sess.DelayedCost("denoise/"+VolKey(s, t),
				func(int64) vtime.Duration {
					return model.AlgTime(cost.Denoise, volBytes+maskBytes)
				},
				[]*dask.Delayed{fetch[s], mask},
				func(args []any) (any, int64, error) {
					v := args[0].(*volume.V4).Vols[t]
					return Denoise(v, args[1].(*volume.V3)), volBytes, nil
				})
		}
		for bi, b := range blocks {
			b := b
			key := fmt.Sprintf("%s/b%02d", SubjKey(s), bi)
			deps := append(append([]*dask.Delayed{}, den...), mask)
			faNodes[key] = sess.DelayedCost("fitmodel/"+key,
				func(in int64) vtime.Duration {
					return model.AlgTime(cost.FitDTM, in) / vtime.Duration(len(blocks))
				},
				deps,
				func(args []any) (any, int64, error) {
					slabs := make([]*volume.V3, len(args)-1)
					for i := 0; i < len(args)-1; i++ {
						slabs[i] = volume.ExtractBlock(args[i].(*volume.V3), b)
					}
					maskSlab := volume.ExtractBlock(args[len(args)-1].(*volume.V3), b)
					fa, err := FitBlock(w.Grad, slabs, maskSlab)
					if err != nil {
						return nil, 0, err
					}
					return faSlab{Block: b, FA: fa}, slabBytes, nil
				})
			roots = append(roots, faNodes[key])
		}
	}
	if _, err := sess.Compute(roots...); err != nil {
		return nil, err
	}
	cl.MarkStage("compute")

	// Assemble results on the client.
	masks := make(map[int]*volume.V3, w.Subjects)
	for s := 0; s < w.Subjects; s++ {
		masks[s] = maskNodes[s].Value().(*volume.V3)
	}
	type kv struct {
		key string
		val any
	}
	var items []kv
	for key, node := range faNodes {
		items = append(items, kv{key, node.Value()})
	}
	return assembleFA(w, masks, items, func(it kv) (string, any) { return it.key, it.val })
}

// segmentFromMean applies the median filter + Otsu sub-steps to an
// already-computed mean volume (the Dask plan computes the mean in
// per-block tasks, so Segment cannot be reused wholesale).
func segmentFromMean(mean *volume.V3) *volume.V3 {
	return imaging.OtsuMask(imaging.MedianFilter3(mean, 1))
}
