package cluster

import (
	"testing"
	"testing/quick"
	"time"

	"imagebench/internal/vtime"
)

// Property: a barrier completes exactly when its latest dependency does,
// for arbitrary dependency sets.
func TestBarrierIsMaxProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		cfg := DefaultConfig()
		cfg.Nodes = 4
		c := New(cfg)
		var deps []*Handle
		var maxEnd vtime.Time
		for i, d := range durs {
			h := c.Submit(i%4, nil, vtime.Duration(d)*vtime.Duration(time.Millisecond), nil)
			if h.End > maxEnd {
				maxEnd = h.End
			}
			deps = append(deps, h)
		}
		b := c.Barrier(deps...)
		if len(deps) == 0 {
			return b.End == 0
		}
		return b.End == maxEnd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a task never finishes before its dependencies plus its own
// duration, and the cluster makespan covers every handle.
func TestSubmitOrderingProperty(t *testing.T) {
	f := func(durs []uint16, nodes8 uint8) bool {
		n := int(nodes8%7) + 1
		cfg := DefaultConfig()
		cfg.Nodes = n
		c := New(cfg)
		var prev *Handle
		for i, d := range durs {
			dur := vtime.Duration(d) * vtime.Duration(time.Millisecond)
			var deps []*Handle
			if prev != nil {
				deps = append(deps, prev)
			}
			h := c.Submit(i%n, deps, dur, nil)
			if prev != nil && h.End < prev.End+vtime.Time(dur) {
				return false
			}
			if h.End < vtime.Time(dur) {
				return false
			}
			prev = h
		}
		return prev == nil || c.Makespan() >= prev.End
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transfers charge time proportional to bytes — more bytes on
// the same route never arrive earlier.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		cfg := DefaultConfig()
		cfg.Nodes = 2
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		c1 := New(cfg)
		h1 := c1.Transfer(0, 1, lo, nil)
		c2 := New(cfg)
		h2 := c2.Transfer(0, 1, hi, nil)
		return h1.End <= h2.End
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the memory tracker never goes negative, never exceeds
// capacity, and the high-water mark is an upper bound of every observed
// usage, under arbitrary alloc/release sequences.
func TestMemTrackerInvariantsProperty(t *testing.T) {
	f := func(ops []int32) bool {
		cfg := DefaultConfig()
		cfg.Nodes = 1
		cfg.MemPerNode = 1 << 20
		m := New(cfg).Mem(0)
		var live int64
		for _, op := range ops {
			n := int64(op%(1<<18) + (1 << 17)) // mix of sizes, some negative
			if n >= 0 {
				if err := m.Alloc(n); err == nil {
					live += n
				}
			} else if live+n >= 0 { // release part of what is held
				m.Release(-n)
				live += n
			}
			if m.Used() != live || m.Used() < 0 || m.Used() > m.Capacity() {
				return false
			}
			if m.HighWater() < m.Used() {
				return false
			}
			if m.Free() != m.Capacity()-m.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
