package cluster

import (
	"errors"
	"testing"
	"time"

	"imagebench/internal/vtime"
)

func small() *Cluster {
	return New(Config{Nodes: 2, WorkersPerNode: 2, MemPerNode: 1 << 20,
		NetBandwidth: 1e6, DiskBandwidth: 1e6})
}

func TestSubmitParallelism(t *testing.T) {
	c := small()
	// Two tasks on one node run on its two slots in parallel.
	h1 := c.Submit(0, nil, 10*time.Second, nil)
	h2 := c.Submit(0, nil, 10*time.Second, nil)
	if h1.End != h2.End {
		t.Errorf("two slots should finish together: %v vs %v", h1.End, h2.End)
	}
	// A third queues.
	h3 := c.Submit(0, nil, 10*time.Second, nil)
	if h3.End.Seconds() != 20 {
		t.Errorf("third task ends %v, want 20s", h3.End)
	}
	if c.Makespan() != h3.End {
		t.Errorf("makespan %v, want %v", c.Makespan(), h3.End)
	}
	if c.Tasks() != 3 {
		t.Errorf("tasks = %d", c.Tasks())
	}
}

func TestDependencyOrdering(t *testing.T) {
	c := small()
	a := c.Submit(0, nil, 5*time.Second, nil)
	b := c.Submit(1, []*Handle{a}, time.Second, nil)
	if b.End.Seconds() != 6 {
		t.Errorf("dependent task ends %v, want 6s", b.End)
	}
}

func TestErrorPropagation(t *testing.T) {
	c := small()
	boom := errors.New("boom")
	a := c.Submit(0, nil, time.Second, func() error { return boom })
	b := c.Submit(1, []*Handle{a}, time.Second, func() error {
		t.Error("dependent fn ran despite failed dependency")
		return nil
	})
	if !errors.Is(b.Err, boom) {
		t.Errorf("error did not propagate: %v", b.Err)
	}
	if c.Barrier(a, b).Err == nil {
		t.Error("barrier swallowed the error")
	}
}

func TestTransferCharges(t *testing.T) {
	c := small() // 1 MB/s network
	h := c.Transfer(0, 1, 1<<20)
	if s := h.End.Seconds(); s < 1.0 || s > 1.1 {
		t.Errorf("1MB at 1MB/s took %v", h.End)
	}
	if c.NetBytes() != 1<<20 {
		t.Errorf("NetBytes = %d", c.NetBytes())
	}
	// Same-node transfers are free.
	if h := c.Transfer(1, 1, 1<<30); h.End != c.Transfer(1, 1, 0).End {
		t.Error("self-transfer should be free")
	}
}

func TestTransferSharedNIC(t *testing.T) {
	c := small()
	// Two transfers out of node 0 serialize on its NIC.
	a := c.Transfer(0, 1, 1<<20)
	b := c.Transfer(0, 1, 1<<20)
	if b.End <= a.End {
		t.Errorf("second transfer should queue: %v vs %v", b.End, a.End)
	}
}

func TestBroadcastTree(t *testing.T) {
	cfg := Config{Nodes: 8, WorkersPerNode: 1, MemPerNode: 1 << 20, NetBandwidth: 1e6, DiskBandwidth: 1e6}
	c := New(cfg)
	h := c.Broadcast(0, 1<<20)
	// log2(8)=3 rounds of ~1s each.
	if s := h.End.Seconds(); s < 2.9 || s > 3.3 {
		t.Errorf("broadcast to 8 nodes took %v, want ~3s", h.End)
	}
}

func TestDiskOps(t *testing.T) {
	c := small()
	w := c.DiskWrite(0, 1<<20)
	r := c.DiskRead(0, 1<<20, w)
	if r.End.Seconds() < 1.9 {
		t.Errorf("write+read of 1MB at 1MB/s ended at %v", r.End)
	}
}

func TestMemTracker(t *testing.T) {
	c := small()
	m := c.Mem(0)
	if err := m.Alloc(1 << 19); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(1 << 20); !errors.Is(err, ErrOOM) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if m.HighWater() != 1<<19 {
		t.Errorf("high water %d", m.HighWater())
	}
	m.Release(1 << 19)
	if m.Used() != 0 {
		t.Errorf("used %d after release", m.Used())
	}
	if err := m.Alloc(1 << 20); err != nil {
		t.Errorf("alloc after release: %v", err)
	}
	if c.MaxHighWater() != 1<<20 {
		t.Errorf("MaxHighWater = %d", c.MaxHighWater())
	}
}

func TestSubmitAnyBalances(t *testing.T) {
	c := small()
	var nodes []int
	for i := 0; i < 4; i++ {
		h := c.SubmitAny(nil, 0, nil, 10*time.Second, nil)
		nodes = append(nodes, h.Node)
	}
	// 4 slots total: all four tasks run at t=0 on distinct slots.
	if c.Makespan().Seconds() != 10 {
		t.Errorf("4 tasks on 4 slots: makespan %v", c.Makespan())
	}
	seen := map[int]int{}
	for _, n := range nodes {
		seen[n]++
	}
	if seen[0] != 2 || seen[1] != 2 {
		t.Errorf("tasks not balanced: %v", seen)
	}
}

func TestSubmitAnyLocality(t *testing.T) {
	c := small()
	// Node 1 is busy for 1s; with a generous locality window the task
	// still prefers node 1 (where its data lives).
	c.Submit(1, nil, time.Second, nil)
	c.Submit(1, nil, time.Second, nil)
	h := c.SubmitAny([]int{1}, 2*time.Second, nil, time.Second, nil)
	if h.Node != 1 {
		t.Errorf("task ran on node %d, want preferred node 1", h.Node)
	}
	// With no locality allowance it runs on the idle node 0.
	h2 := c.SubmitAny([]int{1}, 0, nil, time.Second, nil)
	if h2.Node != 0 {
		t.Errorf("task ran on node %d, want idle node 0", h2.Node)
	}
}

func TestOutOfOrderSubmissionBackfills(t *testing.T) {
	c := New(Config{Nodes: 1, WorkersPerNode: 1, MemPerNode: 1 << 20, NetBandwidth: 1e6, DiskBandwidth: 1e6})
	// A late-ready task is submitted first; an early-ready task submitted
	// afterwards must still use the idle slot before it.
	late := c.Submit(0, []*Handle{{End: vtime.Time(100 * time.Second)}}, 10*time.Second, nil)
	early := c.Submit(0, nil, 5*time.Second, nil)
	if early.End.Seconds() != 5 {
		t.Errorf("early task ends %v, want 5s", early.End)
	}
	if late.End.Seconds() != 110 {
		t.Errorf("late task ends %v, want 110s", late.End)
	}
}

func TestUtilization(t *testing.T) {
	c := small()
	c.Submit(0, nil, 10*time.Second, nil)
	u := c.Utilization()
	if u <= 0.24 || u > 0.26 { // 1 of 4 slots busy
		t.Errorf("utilization %v, want 0.25", u)
	}
}
