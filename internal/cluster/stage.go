package cluster

import "imagebench/internal/vtime"

// Stage marks: named points on the cluster's virtual timeline, dropped
// by the engine pipelines at their stage boundaries (ingest done, mask
// collected, coadd finished). A mark records the makespan at the moment
// it was dropped, so the intervals between consecutive marks partition
// the cluster's virtual timeline exactly — which is what lets the
// tracing layer emit per-stage virtual-time spans whose durations sum
// to the run's reported virtual seconds with no residue. Marks are
// always on (one slice append; no time is charged and no scheduling
// decision changes), so traced and untraced runs simulate identically.

// StageMark is one named point on the virtual timeline.
type StageMark struct {
	Name string
	At   vtime.Time
}

// MarkStage records a stage boundary at the current makespan.
func (c *Cluster) MarkStage(name string) {
	c.stageMarks = append(c.stageMarks, StageMark{Name: name, At: c.makespan})
}

// StageMarks returns a copy of the marks recorded so far, in order.
func (c *Cluster) StageMarks() []StageMark {
	return append([]StageMark(nil), c.stageMarks...)
}

// StageMarkCount returns the number of marks recorded so far, so a
// caller can later slice StageMarks() down to the marks a particular
// run added.
func (c *Cluster) StageMarkCount() int { return len(c.stageMarks) }

// FaultEvent is one injected fault, reconstructed from node state for
// span annotation: kind "kill" or "straggler", stamped with its
// virtual onset time.
type FaultEvent struct {
	Node   int
	Kind   string
	At     vtime.Time
	Factor float64 // slowdown factor for stragglers, 0 for kills
}

// FaultEvents lists the faults injected into this cluster, in node
// order (kills before stragglers per node).
func (c *Cluster) FaultEvents() []FaultEvent {
	var out []FaultEvent
	for i, n := range c.nodes {
		if n.killed {
			out = append(out, FaultEvent{Node: i, Kind: "kill", At: n.deadAt})
		}
		if n.slowFactor > 1 {
			out = append(out, FaultEvent{Node: i, Kind: "straggler", At: n.slowAt, Factor: n.slowFactor})
		}
	}
	return out
}
