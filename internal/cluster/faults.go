package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"imagebench/internal/vtime"
)

// This file implements deterministic fault injection: a schedule of node
// kills and slowdowns applied to the simulated cluster's timelines. The
// paper's evaluation is not only about raw speed but about how the five
// systems *degrade* — Spark recomputes lost partitions from lineage,
// Myria restarts the whole query, SciDB offers no mid-query recovery —
// and a deterministic schedule makes that axis reproducible: the same
// schedule on the same workload always yields the same virtual timeline.
//
// Semantics, chosen to be simple and exactly reproducible:
//
//   - Kill(node, At): the node is up until virtual time At and gone
//     afterwards. A task (or transfer, or disk op) whose interval would
//     end after At fails with a *NodeDownError carrying the kill time;
//     work that completes by At succeeds. Probes (SubmitAny, PickNode)
//     skip nodes that cannot host the task's full interval.
//   - Slow(node, At, Factor): compute tasks becoming ready at or after
//     At run Factor× slower on that node (a straggler). Network and
//     disk are unaffected.
//
// Faults must be injected before engines submit work: the simulator
// books intervals eagerly, and a kill cannot retract bookings that
// already succeeded.

// ErrNodeDown is the sentinel wrapped by every node-failure error.
var ErrNodeDown = errors.New("cluster: node down")

// NodeDownError reports work lost to a killed node: which node, and the
// virtual time the kill took effect (which is also the earliest time the
// failure can be detected and recovery can begin).
type NodeDownError struct {
	Node int
	At   vtime.Time
}

func (e *NodeDownError) Error() string {
	return fmt.Sprintf("cluster: node %d down since %v", e.Node, e.At)
}

func (e *NodeDownError) Unwrap() error { return ErrNodeDown }

// DownAt extracts the node-failure detail from an error chain.
func DownAt(err error) (*NodeDownError, bool) {
	var nd *NodeDownError
	if errors.As(err, &nd) {
		return nd, true
	}
	return nil, false
}

// FaultKind discriminates fault types.
type FaultKind int

const (
	// FaultKill removes a node at a virtual time.
	FaultKill FaultKind = iota
	// FaultSlow multiplies the node's compute durations from a virtual
	// time on (a straggler).
	FaultSlow
)

func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultSlow:
		return "slow"
	}
	return "fault?"
}

// Fault is one resolved fault event on a concrete cluster.
type Fault struct {
	Kind   FaultKind
	Node   int
	At     vtime.Time
	Factor float64 // FaultSlow only; must be > 1
}

// Inject applies the faults to the cluster's timelines. It must be
// called before work is submitted (see the package comment above). It
// rejects out-of-range nodes, non-slowing factors, multiple slowdowns
// of one node (a node models a single straggler regime), and schedules
// that would leave no node alive — and it validates the entire schedule
// before touching any state, so a rejected Inject leaves the cluster
// exactly as it was.
func (c *Cluster) Inject(faults ...Fault) error {
	killed := make(map[int]bool, len(c.nodes))
	slowed := make(map[int]bool, len(c.nodes))
	for i, n := range c.nodes {
		killed[i] = n.killed
		slowed[i] = n.slowFactor > 1
	}
	for _, f := range faults {
		if f.Node < 0 || f.Node >= len(c.nodes) {
			return fmt.Errorf("cluster: fault on node %d, cluster has %d nodes", f.Node, len(c.nodes))
		}
		switch f.Kind {
		case FaultKill:
			killed[f.Node] = true
		case FaultSlow:
			if f.Factor <= 1 {
				return fmt.Errorf("cluster: slow fault on node %d needs factor > 1, got %g", f.Node, f.Factor)
			}
			if slowed[f.Node] {
				return fmt.Errorf("cluster: node %d slowed twice; a node has one straggler regime", f.Node)
			}
			slowed[f.Node] = true
		default:
			return fmt.Errorf("cluster: unknown fault kind %d", f.Kind)
		}
	}
	alive := 0
	for i := range c.nodes {
		if !killed[i] {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("cluster: fault schedule kills all %d nodes", len(c.nodes))
	}
	for _, f := range faults {
		n := c.nodes[f.Node]
		switch f.Kind {
		case FaultKill:
			if !n.killed || f.At < n.deadAt {
				n.killed = true
				n.deadAt = f.At
			}
		case FaultSlow:
			n.slowAt = f.At
			n.slowFactor = f.Factor
		}
	}
	c.faulty = true
	return nil
}

// Faulty reports whether any fault has been injected. Engines use it to
// gate fault-tolerance machinery (e.g. TensorFlow checkpoints) so
// fault-free simulations stay byte-identical to the pre-fault engine.
func (c *Cluster) Faulty() bool { return c.faulty }

// KillTime returns the virtual time the node is killed at, if it is part
// of the kill schedule.
func (c *Cluster) KillTime(nodeID int) (vtime.Time, bool) {
	n := c.node(nodeID)
	return n.deadAt, n.killed
}

// Kills returns how many nodes the schedule kills — the natural bound on
// recovery attempts.
func (c *Cluster) Kills() int {
	k := 0
	for _, n := range c.nodes {
		if n.killed {
			k++
		}
	}
	return k
}

// AliveNodes returns the nodes not yet dead as of the scheduling floor:
// a node whose kill lies in the future is still alive (engines cannot
// know the future), while one killed at or before the floor is gone.
// Engines constructed after AdvanceFloor (query restarts) therefore
// place work only on survivors.
func (c *Cluster) AliveNodes() []int {
	var out []int
	for i, n := range c.nodes {
		if !n.killed || n.deadAt.After(c.floor) {
			out = append(out, i)
		}
	}
	return out
}

// CanHost reports whether a scheduler would still assign a task of
// duration d becoming ready at the given time to the node — i.e. the
// node is not visibly dead at the task's start.
func (c *Cluster) CanHost(nodeID int, ready vtime.Time, d vtime.Duration) bool {
	ready = vtime.Max(ready, c.floor)
	if d < 0 {
		d = 0
	}
	_, ok := c.node(nodeID).probe(ready, d+c.cfg.TaskOverhead)
	return ok
}

// RerunAfterKills re-invokes run until it succeeds, retrying only on
// node-death failures and advancing the scheduling floor to each
// failure time first so every retry is causal (it cannot use idle
// capacity from before the kill). It returns how many failed attempts
// were paid for before the final outcome. This is the shared mechanics
// behind engine-level whole-program recovery policies: Myria's
// automatic query restart and SciDB's manual operator rerun both wrap
// it. Errors that are not node deaths — and deaths of node 0, which
// hosts every engine's driver/coordinator — end the loop immediately.
func (c *Cluster) RerunAfterKills(maxRetries int, run func() error) (failed int, err error) {
	for attempt := 0; ; attempt++ {
		err = run()
		if err == nil {
			return attempt, nil
		}
		nd, ok := DownAt(err)
		if !ok || nd.Node == 0 || attempt >= maxRetries {
			return attempt, err
		}
		c.AdvanceFloor(nd.At)
	}
}

// AdvanceFloor forbids any booking before t: every subsequent task,
// transfer, and disk op starts at or after the floor. Recovery paths use
// it to keep restarts causal — a query restarted after a kill at T
// cannot do work in the idle time before T.
func (c *Cluster) AdvanceFloor(t vtime.Time) {
	if t > c.floor {
		c.floor = t
	}
}

// Floor returns the current scheduling floor.
func (c *Cluster) Floor() vtime.Time { return c.floor }

// FaultSpec is one fault in a scenario, before it is resolved against a
// concrete run: the time is either absolute virtual time or a fraction
// of a reference makespan (the system's own fault-free runtime), so one
// scenario lands mid-run for every system regardless of how fast each
// one is.
type FaultSpec struct {
	Kind   FaultKind
	Node   int
	Frac   float64        // fraction of the reference makespan, when > 0
	At     vtime.Duration // absolute virtual time, when Frac == 0
	Factor float64        // FaultSlow only
}

// Scenario is a parsed fault scenario: zero or more fault specs. The
// empty scenario is the fault-free baseline.
type Scenario []FaultSpec

// ParseScenario parses the textual scenario syntax used by profiles,
// sweep overrides, and the -kill-at CLI flag:
//
//	baseline                     no faults
//	kill:1@30%                   kill node 1 at 30% of the baseline makespan
//	kill:1@10s                   kill node 1 at virtual time 10s
//	slow:2@25%*4                 slow node 2 by 4× from 25% of the baseline
//	kill:1@30%+kill:2@55%        two faults in one scenario
func ParseScenario(s string) (Scenario, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "baseline" {
		return nil, nil
	}
	var sc Scenario
	for _, atom := range strings.Split(s, "+") {
		atom = strings.TrimSpace(atom)
		kind, rest, ok := strings.Cut(atom, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: fault %q: want kill:NODE@TIME or slow:NODE@TIME*FACTOR", atom)
		}
		var spec FaultSpec
		switch kind {
		case "kill":
			spec.Kind = FaultKill
		case "slow":
			spec.Kind = FaultSlow
			var factor string
			rest, factor, ok = strings.Cut(rest, "*")
			if !ok {
				return nil, fmt.Errorf("cluster: slow fault %q: missing *FACTOR", atom)
			}
			f, err := strconv.ParseFloat(factor, 64)
			if err != nil || f <= 1 {
				return nil, fmt.Errorf("cluster: slow fault %q: factor must be a number > 1", atom)
			}
			spec.Factor = f
		default:
			return nil, fmt.Errorf("cluster: unknown fault kind %q in %q", kind, atom)
		}
		nodeStr, at, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("cluster: fault %q: missing @TIME", atom)
		}
		node, err := strconv.Atoi(nodeStr)
		if err != nil || node < 0 {
			return nil, fmt.Errorf("cluster: fault %q: bad node %q", atom, nodeStr)
		}
		spec.Node = node
		if frac, fok := strings.CutSuffix(at, "%"); fok {
			f, err := strconv.ParseFloat(frac, 64)
			if err != nil || f <= 0 || f >= 100 {
				return nil, fmt.Errorf("cluster: fault %q: percentage must be in (0,100)", atom)
			}
			spec.Frac = f / 100
		} else {
			d, err := time.ParseDuration(at)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("cluster: fault %q: bad time %q (want a percentage like 30%% or a duration like 10s)", atom, at)
			}
			spec.At = d
		}
		sc = append(sc, spec)
	}
	return sc, nil
}

func (f FaultSpec) resolve(ref vtime.Duration) Fault {
	at := f.At
	if f.Frac > 0 {
		at = vtime.Duration(float64(ref) * f.Frac)
	}
	return Fault{Kind: f.Kind, Node: f.Node, At: vtime.Time(0).Add(at), Factor: f.Factor}
}

// Faults resolves the scenario against a reference makespan (the
// system's fault-free runtime), turning fractional times into absolute
// virtual times.
func (sc Scenario) Faults(ref vtime.Duration) []Fault {
	out := make([]Fault, len(sc))
	for i, f := range sc {
		out[i] = f.resolve(ref)
	}
	return out
}

// Kills returns the number of kill faults in the scenario.
func (sc Scenario) Kills() int {
	k := 0
	for _, f := range sc {
		if f.Kind == FaultKill {
			k++
		}
	}
	return k
}

// MaxNode returns the highest node index the scenario touches, or -1 for
// the baseline.
func (sc Scenario) MaxNode() int {
	m := -1
	for _, f := range sc {
		if f.Node > m {
			m = f.Node
		}
	}
	return m
}

// TouchesNode reports whether the scenario faults the given node.
func (sc Scenario) TouchesNode(node int) bool {
	for _, f := range sc {
		if f.Node == node {
			return true
		}
	}
	return false
}
