package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"imagebench/internal/vtime"
)

func TestTracingRecordsAllKinds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	c := New(cfg)
	c.EnableTracing()

	a := c.Submit(0, nil, 10*time.Millisecond, nil)
	x := c.Transfer(0, 1, 1<<20, a)
	d := c.DiskWrite(1, 1<<20, x)
	c.Broadcast(0, 1<<10, d)

	kinds := map[EventKind]int{}
	for _, ev := range c.TraceEvents() {
		kinds[ev.Kind]++
		if ev.End < ev.Start {
			t.Errorf("event %v ends before it starts", ev)
		}
	}
	if kinds[EventCompute] != 1 {
		t.Errorf("compute events = %d, want 1", kinds[EventCompute])
	}
	if kinds[EventTransfer] != 2 { // one lane per endpoint
		t.Errorf("transfer events = %d, want 2", kinds[EventTransfer])
	}
	if kinds[EventDisk] != 1 {
		t.Errorf("disk events = %d, want 1", kinds[EventDisk])
	}
	if kinds[EventBcast] != cfg.Nodes {
		t.Errorf("broadcast events = %d, want %d", kinds[EventBcast], cfg.Nodes)
	}
}

func TestTracingOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c := New(cfg)
	c.Submit(0, nil, time.Millisecond, nil)
	if len(c.TraceEvents()) != 0 {
		t.Errorf("recorded %d events without tracing", len(c.TraceEvents()))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.WorkersPerNode = 4
	c := New(cfg)
	c.EnableTracing()
	h := c.Submit(1, nil, 25*time.Millisecond, nil)
	c.Transfer(1, 0, 4<<20, h)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d chrome events, want 3", len(events))
	}
	first := events[0]
	if first["ph"] != "X" || first["pid"] != float64(1) {
		t.Errorf("compute event: %v", first)
	}
	if first["dur"].(float64) < 25_000 { // µs
		t.Errorf("compute duration %v µs, want ≥ 25000", first["dur"])
	}
	// NIC events land on the lane after the worker slots.
	for _, ev := range events[1:] {
		if ev["tid"].(float64) != float64(cfg.WorkersPerNode) {
			t.Errorf("transfer lane = %v, want %d", ev["tid"], cfg.WorkersPerNode)
		}
	}
}

func TestTraceEventTimesMatchHandles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c := New(cfg)
	c.EnableTracing()
	h1 := c.Submit(0, nil, 5*time.Millisecond, nil)
	h2 := c.Submit(0, []*Handle{h1}, 5*time.Millisecond, nil)
	evs := c.TraceEvents()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].End != h1.End || evs[1].End != h2.End {
		t.Errorf("event ends %v/%v, handles %v/%v", evs[0].End, evs[1].End, h1.End, h2.End)
	}
	if evs[1].Start < vtime.Time(5*time.Millisecond) {
		t.Errorf("second task started at %v, before the first finished", evs[1].Start)
	}
}
