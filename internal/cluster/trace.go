package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"imagebench/internal/vtime"
)

// Execution tracing: with tracing enabled the cluster records every
// resource reservation (compute slots, NIC transfers, disk operations)
// and can export the schedule in the Chrome trace-event format, viewable
// in chrome://tracing or Perfetto — the scheduling-visibility tooling a
// simulator release needs for debugging engine behaviour (stage
// barriers, stragglers, idle slots).

// EventKind classifies a trace event's resource.
type EventKind string

// Event kinds.
const (
	EventCompute  EventKind = "compute"
	EventNet      EventKind = "net"
	EventDisk     EventKind = "disk"
	EventBcast    EventKind = "broadcast"
	EventTransfer EventKind = "transfer"
)

// Event is one recorded resource reservation.
type Event struct {
	Kind       EventKind
	Node       int
	Lane       int // worker slot for compute; 0 for NIC/disk lanes
	Start, End vtime.Time
	Bytes      int64 // for net/disk events
}

// EnableTracing starts recording trace events. Call before submitting
// work; already-executed work is not reconstructed.
func (c *Cluster) EnableTracing() { c.tracing = true }

// TraceEvents returns the recorded events in submission order.
func (c *Cluster) TraceEvents() []Event { return c.trace }

func (c *Cluster) record(ev Event) {
	if c.tracing {
		c.trace = append(c.trace, ev)
	}
}

// chromeEvent is one complete event ("ph":"X") in the Chrome trace
// format: timestamps and durations in microseconds, pid = node,
// tid = lane within the node.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

// laneBase spreads resource kinds across thread IDs within a node's
// process group: workers first, then NIC, then disk.
func (c *Cluster) laneBase(kind EventKind) int {
	switch kind {
	case EventCompute:
		return 0
	case EventNet, EventTransfer, EventBcast:
		return c.cfg.WorkersPerNode
	default:
		return c.cfg.WorkersPerNode + 1
	}
}

// WriteChromeTrace exports the recorded schedule as a Chrome trace-event
// JSON array.
func (c *Cluster) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(c.trace))
	for _, ev := range c.trace {
		name := string(ev.Kind)
		if ev.Bytes > 0 {
			name = fmt.Sprintf("%s %dB", ev.Kind, ev.Bytes)
		}
		events = append(events, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   int64(ev.Start) / 1000, // ns → µs
			Dur:  (int64(ev.End) - int64(ev.Start)) / 1000,
			Pid:  ev.Node,
			Tid:  c.laneBase(ev.Kind) + ev.Lane,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
