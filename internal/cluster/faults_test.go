package cluster

import (
	"errors"
	"testing"
	"time"

	"imagebench/internal/vtime"
)

func at(d time.Duration) vtime.Time { return vtime.Time(d) }

// TestSubmitAnyProbesWithOverhead is the regression test for the
// probe/reserve mismatch: SubmitAny and PickNode used to probe workers
// with the bare cost while Submit reserves cost+TaskOverhead, so the
// probed node could differ from the one actually booked. With a nonzero
// overhead the bare-cost probe picks node 0 (whose gap fits 10s but not
// 12s) and then books it at a far worse start; the fixed probe picks
// node 1.
func TestSubmitAnyProbesWithOverhead(t *testing.T) {
	c := New(Config{Nodes: 2, WorkersPerNode: 1, MemPerNode: 1 << 20,
		NetBandwidth: 1e6, DiskBandwidth: 1e6, TaskOverhead: 2 * time.Second})
	// Node 0: busy [0,5) and [15,25) — a 10s gap that cannot hold
	// 10s + 2s overhead.
	c.Submit(0, nil, 3*time.Second, nil)
	c.Submit(0, []*Handle{{End: at(15 * time.Second)}}, 8*time.Second, nil)
	// Node 1: busy [0,12).
	c.Submit(1, nil, 10*time.Second, nil)

	if got := c.PickNode(nil, 0, 0, 10*time.Second); got != 1 {
		t.Errorf("PickNode chose node %d, want 1 (node 0's gap fits the cost but not cost+overhead)", got)
	}
	h := c.SubmitAny(nil, 0, nil, 10*time.Second, nil)
	if h.Node != 1 {
		t.Errorf("SubmitAny booked node %d, want 1", h.Node)
	}
	if want := at(24 * time.Second); h.End != want {
		t.Errorf("SubmitAny task ends %v, want %v", h.End, want)
	}
}

func TestKillSemantics(t *testing.T) {
	c := New(Config{Nodes: 2, WorkersPerNode: 1, MemPerNode: 1 << 20,
		NetBandwidth: 1e6, DiskBandwidth: 1e6})
	if err := c.Inject(Fault{Kind: FaultKill, Node: 1, At: at(5 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	// Work completing before the kill succeeds.
	h := c.Submit(1, nil, 3*time.Second, nil)
	if h.Err != nil {
		t.Fatalf("pre-kill task failed: %v", h.Err)
	}
	// A task whose interval crosses the kill is lost, detected at the kill.
	h = c.Submit(1, []*Handle{{End: at(4 * time.Second)}}, 3*time.Second, nil)
	nd, ok := DownAt(h.Err)
	if !ok || nd.Node != 1 || nd.At != at(5*time.Second) {
		t.Fatalf("mid-run kill: got err %v, want node 1 down at 5s", h.Err)
	}
	if !errors.Is(h.Err, ErrNodeDown) {
		t.Fatal("NodeDownError must wrap ErrNodeDown")
	}
	// A task becoming ready after the kill never runs; fn must not run.
	ran := false
	h = c.Submit(1, []*Handle{{End: at(6 * time.Second)}}, time.Second, func() error { ran = true; return nil })
	if _, ok := DownAt(h.Err); !ok || ran {
		t.Fatalf("post-kill task: err=%v ran=%v", h.Err, ran)
	}
	// SubmitAny routes around the dead node.
	h = c.SubmitAny(nil, 0, []*Handle{{End: at(10 * time.Second)}}, time.Second, nil)
	if h.Err != nil || h.Node != 0 {
		t.Fatalf("SubmitAny after kill: node=%d err=%v", h.Node, h.Err)
	}
	// Transfers touching the dead node fail too.
	x := c.Transfer(1, 0, 1<<20, &Handle{End: at(10 * time.Second)})
	if _, ok := DownAt(x.Err); !ok {
		t.Fatalf("transfer from dead node: %v", x.Err)
	}
	w := c.DiskWrite(1, 1<<20, &Handle{End: at(10 * time.Second)})
	if _, ok := DownAt(w.Err); !ok {
		t.Fatalf("disk write on dead node: %v", w.Err)
	}
}

func TestSlowSemantics(t *testing.T) {
	c := New(Config{Nodes: 1, WorkersPerNode: 1, MemPerNode: 1 << 20,
		NetBandwidth: 1e6, DiskBandwidth: 1e6})
	if err := c.Inject(Fault{Kind: FaultSlow, Node: 0, At: at(10 * time.Second), Factor: 2}); err != nil {
		t.Fatal(err)
	}
	h := c.Submit(0, nil, 4*time.Second, nil)
	if h.End != at(4*time.Second) {
		t.Errorf("pre-slowdown task ends %v, want 4s", h.End)
	}
	h = c.Submit(0, []*Handle{{End: at(10 * time.Second)}}, 4*time.Second, nil)
	if h.End != at(18*time.Second) {
		t.Errorf("straggler task ends %v, want 18s (2x stretch)", h.End)
	}
}

func TestFloorKeepsRestartsCausal(t *testing.T) {
	c := New(Config{Nodes: 1, WorkersPerNode: 1, MemPerNode: 1 << 20,
		NetBandwidth: 1e6, DiskBandwidth: 1e6})
	c.AdvanceFloor(at(30 * time.Second))
	if h := c.Submit(0, nil, time.Second, nil); h.End != at(31*time.Second) {
		t.Errorf("post-floor task ends %v, want 31s", h.End)
	}
	if h := c.Transfer(0, 0, 0); h.End != at(30*time.Second) {
		t.Errorf("post-floor no-op transfer ends %v, want 30s", h.End)
	}
}

func TestAliveNodesTracksFloor(t *testing.T) {
	c := New(Config{Nodes: 3, WorkersPerNode: 1, MemPerNode: 1 << 20,
		NetBandwidth: 1e6, DiskBandwidth: 1e6})
	if err := c.Inject(Fault{Kind: FaultKill, Node: 2, At: at(5 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	if got := len(c.AliveNodes()); got != 3 {
		t.Errorf("before the kill takes effect: %d alive, want 3 (the future is unknown)", got)
	}
	c.AdvanceFloor(at(5 * time.Second))
	alive := c.AliveNodes()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 1 {
		t.Errorf("after floor reaches the kill: alive=%v, want [0 1]", alive)
	}
	if c.Kills() != 1 || !c.Faulty() {
		t.Errorf("Kills=%d Faulty=%v", c.Kills(), c.Faulty())
	}
}

func TestInjectValidation(t *testing.T) {
	c := New(Config{Nodes: 2, WorkersPerNode: 1, MemPerNode: 1 << 20,
		NetBandwidth: 1e6, DiskBandwidth: 1e6})
	if err := c.Inject(Fault{Kind: FaultKill, Node: 9, At: 0}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := c.Inject(Fault{Kind: FaultSlow, Node: 0, At: 0, Factor: 0.5}); err == nil {
		t.Error("non-slowing factor accepted")
	}
	if err := c.Inject(
		Fault{Kind: FaultKill, Node: 0, At: at(time.Second)},
		Fault{Kind: FaultKill, Node: 1, At: at(time.Second)},
	); err == nil {
		t.Error("schedule killing every node accepted")
	}
	if err := c.Inject(
		Fault{Kind: FaultSlow, Node: 0, At: at(time.Second), Factor: 2},
		Fault{Kind: FaultSlow, Node: 0, At: at(2 * time.Second), Factor: 8},
	); err == nil {
		t.Error("two slowdowns of one node accepted; only one would be simulated")
	}
	// A rejected schedule must leave the cluster untouched: the valid
	// kill bundled with the bad factor above must not have applied.
	if c.Faulty() || c.Kills() != 0 {
		t.Errorf("rejected Inject mutated the cluster: faulty=%v kills=%d", c.Faulty(), c.Kills())
	}
	if h := c.Submit(0, []*Handle{{End: at(10 * time.Second)}}, time.Second, nil); h.Err != nil {
		t.Errorf("node killed by a rejected schedule: %v", h.Err)
	}
}

func TestParseScenario(t *testing.T) {
	for _, tc := range []struct {
		in    string
		kills int
		n     int
	}{
		{"baseline", 0, 0},
		{"", 0, 0},
		{"kill:1@30%", 1, 1},
		{"kill:1@10s", 1, 1},
		{"kill:1@30%+kill:2@55%", 2, 2},
		{"slow:3@25%*4", 0, 1},
		{"kill:1@30%+slow:2@10s*2.5", 1, 2},
	} {
		sc, err := ParseScenario(tc.in)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", tc.in, err)
			continue
		}
		if len(sc) != tc.n || sc.Kills() != tc.kills {
			t.Errorf("ParseScenario(%q) = %d specs (%d kills), want %d (%d)", tc.in, len(sc), sc.Kills(), tc.n, tc.kills)
		}
	}
	for _, bad := range []string{
		"kill:1", "kill:@30%", "kill:x@30%", "kill:1@0%", "kill:1@120%",
		"kill:1@-3s", "slow:1@30%", "slow:1@30%*1", "melt:1@30%", "kill:1@soon",
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) should fail", bad)
		}
	}
	// Fractions resolve against the reference makespan; absolutes do not.
	sc, err := ParseScenario("kill:1@50%+kill:2@7s")
	if err != nil {
		t.Fatal(err)
	}
	fs := sc.Faults(10 * time.Second)
	if fs[0].At != at(5*time.Second) || fs[1].At != at(7*time.Second) {
		t.Errorf("resolved faults %v", fs)
	}
	if sc.MaxNode() != 2 || !sc.TouchesNode(1) || sc.TouchesNode(0) {
		t.Errorf("scenario node accounting wrong: %v", sc)
	}
}
