// Package cluster implements a virtual-time simulation of a shared-nothing
// compute cluster: a set of nodes, each with a fixed number of worker slots,
// a bounded memory budget, a local disk, and a network interface with finite
// bandwidth.
//
// It substitutes for the 16–64 node AWS clusters used in the paper (see
// DESIGN.md §2). Engines submit tasks in the order their scheduler would
// dispatch them; the cluster assigns each task to a worker slot and advances
// per-resource virtual clocks by modeled durations. The tasks' Go functions
// execute for real (producing real data that tests validate), while elapsed
// time is tracked virtually, so a 64-node experiment runs deterministically
// on one physical core.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"imagebench/internal/vtime"
)

// Config describes the simulated cluster hardware. The defaults in
// DefaultConfig mirror the paper's r3.2xlarge nodes.
type Config struct {
	Nodes          int            // number of machines
	WorkersPerNode int            // parallel worker slots per machine (vCPUs or tuned workers)
	MemPerNode     int64          // bytes of usable memory per machine
	NetBandwidth   float64        // bytes per virtual second per NIC
	DiskBandwidth  float64        // bytes per virtual second per local disk
	TaskOverhead   vtime.Duration // fixed scheduling cost charged to every task
}

// DefaultConfig returns a 16-node cluster modeled on the paper's setup:
// r3.2xlarge instances with 8 vCPUs, 61 GB memory, SSD storage, and
// 10 GbE-class networking.
func DefaultConfig() Config {
	return Config{
		Nodes:          16,
		WorkersPerNode: 8,
		MemPerNode:     61 << 30,
		NetBandwidth:   700e6, // ~700 MB/s NIC
		DiskBandwidth:  400e6, // ~400 MB/s SSD
		TaskOverhead:   0,
	}
}

// ErrOOM is returned (wrapped) when a memory reservation exceeds a node's
// budget. Engines translate it into their own failure behaviour: Myria's
// pipelined mode fails the query, Spark spills to disk instead.
var ErrOOM = errors.New("out of memory")

// Handle records the simulated completion of a task or transfer. Handles are
// passed as dependencies to later submissions, which is how engines express
// their dataflow to the simulator.
type Handle struct {
	Node int        // node the work ran on (or destination node for transfers)
	End  vtime.Time // virtual completion time
	Err  error      // first error from the task function, if any
}

// After returns the virtual time at which all given handles have completed.
// Nil handles are treated as already complete at time zero.
func After(deps ...*Handle) vtime.Time {
	var t vtime.Time
	for _, d := range deps {
		if d != nil && d.End > t {
			t = d.End
		}
	}
	return t
}

// FirstErr returns the first non-nil error among the handles.
func FirstErr(deps ...*Handle) error {
	for _, d := range deps {
		if d != nil && d.Err != nil {
			return d.Err
		}
	}
	return nil
}

type node struct {
	workers []vtime.GapTimeline
	nic     vtime.GapTimeline
	disk    vtime.GapTimeline
	mem     MemTracker

	// Fault-injection state (see faults.go).
	killed     bool
	deadAt     vtime.Time
	slowAt     vtime.Time
	slowFactor float64 // > 1 after slowAt (straggler)
}

// bestWorker returns the slot that can start a task of the given duration
// earliest, and that start time.
func (n *node) bestWorker(ready vtime.Time, d vtime.Duration) (int, vtime.Time) {
	best, bestStart := 0, n.workers[0].StartAt(ready, d)
	for i := 1; i < len(n.workers); i++ {
		if s := n.workers[i].StartAt(ready, d); s < bestStart {
			best, bestStart = i, s
		}
	}
	return best, bestStart
}

// plan resolves where and how long a task of nominal duration d becoming
// ready at ready would run on this node: the chosen slot, its start, and
// the node-effective duration. A straggler node stretches tasks that
// *start* at or after its slowdown (a task already running when the
// degradation begins is approximated as unaffected); the stretched
// duration is re-probed, which can only move the start later — still at
// or after the slowdown, so the fixed point is immediate.
func (n *node) plan(ready vtime.Time, d vtime.Duration) (w int, start vtime.Time, eff vtime.Duration) {
	w, start = n.bestWorker(ready, d)
	if n.slowFactor > 1 && !start.Before(n.slowAt) {
		eff = vtime.Duration(float64(d) * n.slowFactor)
		w, start = n.bestWorker(ready, eff)
		return w, start, eff
	}
	return w, start, d
}

// probe returns the start a task of nominal duration d becoming ready at
// ready would get on this node, and whether a scheduler would assign it
// there: false only when the node is already dead at that start. A task
// that starts before the kill and would die mid-run is still assigned —
// the scheduler cannot see the future; the failure surfaces when the
// task runs (Submit) and the engine's recovery deals with it. The
// duration must include any per-task overhead: probing with a different
// duration than the one later reserved can select a slot — or a node —
// the booking then disagrees with.
func (n *node) probe(ready vtime.Time, d vtime.Duration) (vtime.Time, bool) {
	_, start, _ := n.plan(ready, d)
	if n.killed && !start.Before(n.deadAt) {
		return start, false
	}
	return start, true
}

// Cluster is the simulated cluster. It is not safe for concurrent use; the
// engines in this repository are deterministic single-goroutine simulations.
type Cluster struct {
	cfg      Config
	nodes    []*node
	makespan vtime.Time
	tasks    int
	xferred  int64 // total bytes moved over the network

	// Fault-injection state (see faults.go): whether any fault is
	// scheduled, and the booking floor recovery paths raise so restarts
	// cannot use idle time from before the failure.
	faulty bool
	floor  vtime.Time

	// Tracing state (see trace.go).
	tracing bool
	trace   []Event

	stageMarks []StageMark
}

// New builds a cluster from cfg. It panics on non-positive node or worker
// counts, which always indicate a programming error in an experiment.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.WorkersPerNode <= 0 {
		panic(fmt.Sprintf("cluster: invalid config %+v", cfg))
	}
	if cfg.NetBandwidth <= 0 {
		cfg.NetBandwidth = DefaultConfig().NetBandwidth
	}
	if cfg.DiskBandwidth <= 0 {
		cfg.DiskBandwidth = DefaultConfig().DiskBandwidth
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &node{
			workers: make([]vtime.GapTimeline, cfg.WorkersPerNode),
			mem:     MemTracker{capacity: cfg.MemPerNode},
		})
	}
	return c
}

// Config returns the configuration the cluster was built with.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Workers returns the total number of worker slots in the cluster.
func (c *Cluster) Workers() int { return len(c.nodes) * c.cfg.WorkersPerNode }

func (c *Cluster) node(i int) *node {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", i, len(c.nodes)))
	}
	return c.nodes[i]
}

func (c *Cluster) observe(t vtime.Time) {
	if t > c.makespan {
		c.makespan = t
	}
}

// Submit runs fn on the earliest-free worker slot of the given node, after
// all deps complete, charging cost of virtual time plus the per-task
// overhead. fn may be nil for pure "delay" tasks. If any dependency failed,
// fn is not run and the error propagates.
func (c *Cluster) Submit(nodeID int, deps []*Handle, cost vtime.Duration, fn func() error) *Handle {
	n := c.node(nodeID)
	ready := vtime.Max(After(deps...), c.floor)
	if err := FirstErr(deps...); err != nil {
		return &Handle{Node: nodeID, End: ready, Err: err}
	}
	if cost < 0 {
		cost = 0
	}
	w, probedStart, d := n.plan(ready, cost+c.cfg.TaskOverhead)
	if n.killed && (!ready.Before(n.deadAt) || probedStart.Add(d).After(n.deadAt)) {
		// The node is already down, or dies before the task completes:
		// the work is lost, and the failure cannot be detected before
		// the kill itself.
		return &Handle{Node: nodeID, End: vtime.Max(ready, n.deadAt), Err: &NodeDownError{Node: nodeID, At: n.deadAt}}
	}
	start, end := n.workers[w].Reserve(ready, d)
	c.tasks++
	c.observe(end)
	c.record(Event{Kind: EventCompute, Node: nodeID, Lane: w, Start: start, End: end})
	h := &Handle{Node: nodeID, End: end}
	if fn != nil {
		h.Err = fn()
	}
	return h
}

// SubmitAny runs fn on whichever node can start it earliest, preferring the
// nodes in prefer when their start time is within locality of the global
// best. This models dynamic, locality-aware schedulers (Dask): work runs
// where its inputs live unless another machine is idle enough that stealing
// pays off. A nil or empty prefer list means no locality preference.
func (c *Cluster) SubmitAny(prefer []int, locality vtime.Duration, deps []*Handle, cost vtime.Duration, fn func() error) *Handle {
	ready := vtime.Max(After(deps...), c.floor)
	if cost < 0 {
		cost = 0
	}
	// Probe with the same duration Submit will reserve — the clamped
	// cost plus the per-task overhead. Probing with the bare cost can
	// select a node whose gap fits the cost but not the booking,
	// booking a different slot (and a worse start) than the one the
	// probe chose.
	d := cost + c.cfg.TaskOverhead
	best, bestStart := -1, vtime.Time(math.MaxInt64)
	for i, n := range c.nodes {
		if start, ok := n.probe(ready, d); ok && start < bestStart {
			best, bestStart = i, start
		}
	}
	if best < 0 {
		// Inject guarantees at least one node is never killed, and
		// probe only rejects killed nodes.
		panic("cluster: no schedulable node despite the at-least-one-alive invariant")
	}
	for _, p := range prefer {
		if p < 0 || p >= len(c.nodes) {
			continue
		}
		if start, ok := c.nodes[p].probe(ready, d); ok && start.Sub(bestStart) <= locality {
			best = p
			break
		}
	}
	return c.Submit(best, deps, cost, fn)
}

// PickNode returns the node SubmitAny would choose for a task of the
// given duration becoming ready at the given time, without reserving
// anything. It lets callers schedule input transfers to the chosen node
// before submitting the task. The duration matters: slots are probed for
// a gap that actually fits the task.
func (c *Cluster) PickNode(prefer []int, locality vtime.Duration, ready vtime.Time, cost vtime.Duration) int {
	ready = vtime.Max(ready, c.floor)
	if cost < 0 {
		cost = 0
	}
	// As in SubmitAny, probe with the overhead-inclusive duration the
	// later Submit will reserve, so the chosen node is the one actually
	// booked.
	d := cost + c.cfg.TaskOverhead
	best, bestStart := -1, vtime.Time(math.MaxInt64)
	for i, n := range c.nodes {
		if start, ok := n.probe(ready, d); ok && start < bestStart {
			best, bestStart = i, start
		}
	}
	if best < 0 {
		// Inject guarantees at least one node is never killed, and
		// probe only rejects killed nodes.
		panic("cluster: no schedulable node despite the at-least-one-alive invariant")
	}
	for _, p := range prefer {
		if p < 0 || p >= len(c.nodes) {
			continue
		}
		if start, ok := c.nodes[p].probe(ready, d); ok && start.Sub(bestStart) <= locality {
			return p
		}
	}
	return best
}

// Transfer moves nbytes from node src to node dst over both NICs, after
// deps. It returns a handle completing when the data is resident on dst.
// Transfers between a node and itself are free.
func (c *Cluster) Transfer(src, dst int, nbytes int64, deps ...*Handle) *Handle {
	ready := vtime.Max(After(deps...), c.floor)
	if err := FirstErr(deps...); err != nil {
		return &Handle{Node: dst, End: ready, Err: err}
	}
	if src == dst || nbytes <= 0 {
		return &Handle{Node: dst, End: ready}
	}
	d := bytesDur(nbytes, c.cfg.NetBandwidth)
	s := c.node(src)
	t := c.node(dst)
	// The transfer occupies both NICs for the same interval: find the
	// earliest common gap by fixed-point iteration.
	start := ready
	for i := 0; i < 32; i++ {
		next := vtime.Max(s.nic.StartAt(start, d), t.nic.StartAt(start, d))
		if next == start {
			break
		}
		start = next
	}
	// A transfer needs both endpoints alive for its whole interval: a
	// killed source loses the data, a killed destination loses the copy.
	for _, ep := range [2]int{src, dst} {
		n := c.node(ep)
		if n.killed && (!ready.Before(n.deadAt) || start.Add(d).After(n.deadAt)) {
			return &Handle{Node: ep, End: vtime.Max(ready, n.deadAt), Err: &NodeDownError{Node: ep, At: n.deadAt}}
		}
	}
	_, end := s.nic.Reserve(start, d)
	t.nic.Reserve(start, d)
	c.xferred += nbytes
	c.observe(end)
	c.record(Event{Kind: EventTransfer, Node: src, Start: start, End: end, Bytes: nbytes})
	c.record(Event{Kind: EventTransfer, Node: dst, Start: start, End: end, Bytes: nbytes})
	return &Handle{Node: dst, End: end}
}

// Broadcast replicates nbytes from src to every other node using a binary
// distribution tree (the strategy BitTorrent-style broadcasts approximate):
// ceil(log2(nodes)) rounds, each taking one transfer time.
func (c *Cluster) Broadcast(src int, nbytes int64, deps ...*Handle) *Handle {
	ready := vtime.Max(After(deps...), c.floor)
	if err := FirstErr(deps...); err != nil {
		return &Handle{Node: src, End: ready, Err: err}
	}
	if len(c.nodes) <= 1 || nbytes <= 0 {
		return &Handle{Node: src, End: ready}
	}
	rounds := int(math.Ceil(math.Log2(float64(len(c.nodes)))))
	d := bytesDur(nbytes, c.cfg.NetBandwidth) * vtime.Duration(rounds)
	end := ready.Add(d)
	if s := c.node(src); s.killed && (!ready.Before(s.deadAt) || end.After(s.deadAt)) {
		return &Handle{Node: src, End: vtime.Max(ready, s.deadAt), Err: &NodeDownError{Node: src, At: s.deadAt}}
	}
	for i, n := range c.nodes {
		if n.killed && !ready.Before(n.deadAt) {
			continue // dead receivers are simply absent from the tree
		}
		n.nic.Reserve(ready, d)
		c.record(Event{Kind: EventBcast, Node: i, Start: ready, End: end, Bytes: nbytes})
	}
	c.xferred += nbytes * int64(len(c.nodes)-1)
	c.observe(end)
	return &Handle{Node: src, End: end}
}

// DiskWrite charges a local-disk write of nbytes on the node.
func (c *Cluster) DiskWrite(nodeID int, nbytes int64, deps ...*Handle) *Handle {
	return c.diskOp(nodeID, nbytes, deps)
}

// DiskRead charges a local-disk read of nbytes on the node.
func (c *Cluster) DiskRead(nodeID int, nbytes int64, deps ...*Handle) *Handle {
	return c.diskOp(nodeID, nbytes, deps)
}

func (c *Cluster) diskOp(nodeID int, nbytes int64, deps []*Handle) *Handle {
	ready := vtime.Max(After(deps...), c.floor)
	if err := FirstErr(deps...); err != nil {
		return &Handle{Node: nodeID, End: ready, Err: err}
	}
	n := c.node(nodeID)
	d := bytesDur(nbytes, c.cfg.DiskBandwidth)
	if n.killed && (!ready.Before(n.deadAt) || n.disk.StartAt(ready, d).Add(d).After(n.deadAt)) {
		return &Handle{Node: nodeID, End: vtime.Max(ready, n.deadAt), Err: &NodeDownError{Node: nodeID, At: n.deadAt}}
	}
	start, end := n.disk.Reserve(ready, d)
	c.observe(end)
	c.record(Event{Kind: EventDisk, Node: nodeID, Start: start, End: end, Bytes: nbytes})
	return &Handle{Node: nodeID, End: end}
}

// Barrier returns a handle that completes when all deps complete,
// propagating the first error. It consumes no resources; it models a
// synchronization point (stage boundary, query end).
func (c *Cluster) Barrier(deps ...*Handle) *Handle {
	h := &Handle{End: After(deps...), Err: FirstErr(deps...)}
	c.observe(h.End)
	return h
}

// Mem returns the memory tracker for a node.
func (c *Cluster) Mem(nodeID int) *MemTracker { return &c.node(nodeID).mem }

// MaxHighWater returns the largest memory high-water mark across nodes.
func (c *Cluster) MaxHighWater() int64 {
	var m int64
	for _, n := range c.nodes {
		if n.mem.highWater > m {
			m = n.mem.highWater
		}
	}
	return m
}

// Makespan returns the latest virtual completion time observed so far — the
// simulated wall-clock runtime of everything submitted to the cluster.
func (c *Cluster) Makespan() vtime.Time { return c.makespan }

// Tasks returns the number of tasks executed.
func (c *Cluster) Tasks() int { return c.tasks }

// NetBytes returns total bytes moved over the simulated network.
func (c *Cluster) NetBytes() int64 { return c.xferred }

// Utilization returns the mean busy fraction across all worker slots.
func (c *Cluster) Utilization() float64 {
	if c.makespan == 0 {
		return 0
	}
	var busy vtime.Duration
	for _, n := range c.nodes {
		for i := range n.workers {
			busy += n.workers[i].Busy()
		}
	}
	total := vtime.Duration(c.makespan).Seconds() * float64(c.Workers())
	if total == 0 {
		return 0
	}
	return busy.Seconds() / total
}

func bytesDur(nbytes int64, bandwidth float64) vtime.Duration {
	if nbytes <= 0 || bandwidth <= 0 {
		return 0
	}
	return vtime.Duration(float64(nbytes) / bandwidth * 1e9)
}

// MemTracker accounts for memory use on one node. It is advisory: engines
// consult it to decide whether to fail, spill, or proceed.
type MemTracker struct {
	capacity  int64
	used      int64
	highWater int64
}

// Capacity returns the node's memory budget in bytes.
func (m *MemTracker) Capacity() int64 { return m.capacity }

// Used returns currently reserved bytes.
func (m *MemTracker) Used() int64 { return m.used }

// HighWater returns the maximum bytes ever reserved at once.
func (m *MemTracker) HighWater() int64 { return m.highWater }

// Free returns the remaining budget.
func (m *MemTracker) Free() int64 { return m.capacity - m.used }

// Alloc reserves nbytes, or returns an error wrapping ErrOOM if the node
// budget would be exceeded.
func (m *MemTracker) Alloc(nbytes int64) error {
	if nbytes < 0 {
		panic("cluster: negative allocation")
	}
	if m.used+nbytes > m.capacity {
		return fmt.Errorf("%w: need %d bytes, %d of %d in use", ErrOOM, nbytes, m.used, m.capacity)
	}
	m.used += nbytes
	if m.used > m.highWater {
		m.highWater = m.used
	}
	return nil
}

// Release returns nbytes to the budget. Releasing more than is in use is a
// programming error and panics.
func (m *MemTracker) Release(nbytes int64) {
	if nbytes < 0 || nbytes > m.used {
		panic(fmt.Sprintf("cluster: bad release of %d with %d in use", nbytes, m.used))
	}
	m.used -= nbytes
}
