package scidb

import (
	"imagebench/internal/cluster"
)

// RerunOnFailure models SciDB's behaviour under node failure: there is
// no mid-query recovery — an instance dying mid-query fails the query
// with an error and leaves nothing to resume, so the operator must
// resubmit it by hand. The helper plays that operator: after each
// node-death failure it advances the scheduling floor to the failure
// time (the rerun cannot start before the crash is observed) and calls
// run again; the run closure should deploy a fresh Engine, which places
// instances only on the surviving nodes.
//
// It returns how many failed attempts were paid for before the final
// result — the "failure + rerun cost" the fault-tolerance experiments
// report — plus the terminal error, if any. Errors that are not node
// deaths are returned unchanged.
func RerunOnFailure(cl *cluster.Cluster, maxReruns int, run func() error) (failedAttempts int, err error) {
	return cl.RerunAfterKills(maxReruns, run)
}
