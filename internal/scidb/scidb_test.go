package scidb

import (
	"fmt"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
)

func engine(nodes int) (*Engine, *cluster.Cluster) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cl := cluster.New(cfg)
	return New(cl, objstore.New(), nil, DefaultConfig()), cl
}

func chunks(n int, size int64) []Chunk {
	out := make([]Chunk, n)
	for i := range out {
		out[i] = Chunk{Coords: fmt.Sprintf("c%03d", i), Value: i, Size: size}
	}
	return out
}

func TestIngestPathsDiffer(t *testing.T) {
	e1, cl1 := engine(4)
	t0 := cl1.Makespan() // exclude system startup
	if _, err := e1.IngestFromArray("A", chunks(16, 12<<20)); err != nil {
		t.Fatal(err)
	}
	slow := cl1.Makespan().Sub(t0)
	e2, cl2 := engine(4)
	t0 = cl2.Makespan()
	if _, err := e2.IngestAio("A", chunks(16, 12<<20), 2.5); err != nil {
		t.Fatal(err)
	}
	fast := cl2.Makespan().Sub(t0)
	if float64(slow) < 5*float64(fast) {
		t.Errorf("from_array (%v) should be ≫ aio_input (%v)", slow, fast)
	}
}

func TestFilterAlignmentCost(t *testing.T) {
	run := func(aligned bool) float64 {
		e, cl := engine(2)
		a, _ := e.IngestAio("A", chunks(16, 12<<20), 2.5)
		t0 := cl.Makespan()
		f := a.Filter("f", aligned, func(c Chunk) bool { return c.Coords < "c008" })
		if err := f.Done().Err; err != nil {
			t.Fatal(err)
		}
		return cl.Makespan().Sub(t0).Seconds()
	}
	if run(false) <= run(true) {
		t.Error("misaligned selection should cost more than aligned")
	}
}

func TestAggregateGroups(t *testing.T) {
	e, _ := engine(2)
	a, _ := e.IngestAio("A", chunks(8, 1<<20), 2.5)
	agg := a.Aggregate("sum", cost.Mean,
		func(c Chunk) string { return c.Coords[:2] },
		func(key string, group []Chunk) Chunk {
			s := 0
			for _, c := range group {
				s += c.Value.(int)
			}
			return Chunk{Coords: key, Value: s, Size: 1}
		})
	if err := agg.Done().Err; err != nil {
		t.Fatal(err)
	}
	if agg.NChunks() != 1 || agg.Chunks[0].Value.(int) != 28 {
		t.Errorf("aggregate %+v", agg.Chunks)
	}
}

func TestStreamTaxesTSV(t *testing.T) {
	// stream() should cost more than a native MapChunks of the same op.
	runs := func(stream bool) float64 {
		e, cl := engine(2)
		a, _ := e.IngestAio("A", chunks(8, 12<<20), 2.5)
		t0 := cl.Makespan()
		var out *Array
		if stream {
			out = a.Stream("s", cost.Denoise, func(c Chunk) Chunk { return c })
		} else {
			out = a.MapChunks("m", cost.Denoise, func(c Chunk) Chunk { return c })
		}
		if err := out.Done().Err; err != nil {
			t.Fatal(err)
		}
		return cl.Makespan().Sub(t0).Seconds()
	}
	if runs(true) <= runs(false) {
		t.Error("stream() should be slower than native processing")
	}
}

func TestIterativeAQLIncrementalFaster(t *testing.T) {
	run := func(incremental bool) float64 {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 2
		cl := cluster.New(cfg)
		c := DefaultConfig()
		c.Incremental = incremental
		e := New(cl, objstore.New(), nil, c)
		a, _ := e.IngestAio("A", chunks(16, 12<<20), 2.5)
		t0 := cl.Makespan()
		out := a.IterativeAQL("it", 2, cost.CoaddIter, func(_ int, cs []Chunk) []Chunk { return cs })
		if err := out.Done().Err; err != nil {
			t.Fatal(err)
		}
		return cl.Makespan().Sub(t0).Seconds()
	}
	full, incr := run(false), run(true)
	if full < 2.5*incr {
		t.Errorf("incremental iteration should recover ≥2.5×: full %v vs incr %v", full, incr)
	}
}

func TestChunkTimeOversizePenalty(t *testing.T) {
	e, _ := engine(1)
	small := e.chunkTime(cost.CoaddIter, Chunk{Size: OptimalChunkBytes})
	big := e.chunkTime(cost.CoaddIter, Chunk{Size: 4 * OptimalChunkBytes})
	// 4× the data at >4× the time (penalty on top of linearity).
	if float64(big) <= 4*float64(small) {
		t.Errorf("oversize penalty missing: %v vs %v", big, small)
	}
}
