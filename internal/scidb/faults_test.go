package scidb

import (
	"fmt"
	"testing"
	"time"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

func testChunks(n int) []Chunk {
	out := make([]Chunk, n)
	for i := range out {
		out[i] = Chunk{Coords: fmt.Sprintf("c%02d", i), Value: i, Size: 1 << 20}
	}
	return out
}

// runQuery is one SciDB query: aio ingest plus a chunked operator.
func runQuery(cl *cluster.Cluster, store *objstore.Store) error {
	e := New(cl, store, nil, DefaultConfig())
	a, err := e.IngestAio("A", testChunks(16), 2.5)
	if err != nil {
		return err
	}
	out := a.MapChunks("work", cost.Denoise, func(c Chunk) Chunk { return c })
	if h := out.Done(); h.Err != nil {
		return h.Err
	}
	return nil
}

// TestNodeDeathHasNoRecovery: SciDB offers no mid-query recovery — an
// instance dying mid-query fails the query with the node-down error, and
// only a manual operator rerun (on the survivors, after the failure)
// produces a result. The reported cost includes the wasted attempt.
func TestNodeDeathHasNoRecovery(t *testing.T) {
	mk := func() (*cluster.Cluster, *objstore.Store) {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4
		return cluster.New(cfg), objstore.New()
	}
	bcl, bstore := mk()
	if err := runQuery(bcl, bstore); err != nil {
		t.Fatal(err)
	}
	baseline := vtime.Duration(bcl.Makespan())

	fcl, fstore := mk()
	// Startup is 6s; ingest and the operator run from ~6s, so a kill at
	// 6.3s lands mid-query.
	killAt := vtime.Time(6300 * time.Millisecond)
	if err := fcl.Inject(cluster.Fault{Kind: cluster.FaultKill, Node: 1, At: killAt}); err != nil {
		t.Fatal(err)
	}
	// The query itself must fail — there is nothing resembling recovery.
	if err := runQuery(fcl, fstore); err == nil {
		t.Fatal("query survived a node death; SciDB has no mid-query recovery")
	}

	rcl, rstore := mk()
	if err := rcl.Inject(cluster.Fault{Kind: cluster.FaultKill, Node: 1, At: killAt}); err != nil {
		t.Fatal(err)
	}
	attempts, err := RerunOnFailure(rcl, rcl.Kills(), func() error {
		return runQuery(rcl, rstore)
	})
	if err != nil {
		t.Fatalf("operator rerun failed: %v", err)
	}
	if attempts != 1 {
		t.Errorf("failed attempts = %d, want 1", attempts)
	}
	recovered := vtime.Duration(rcl.Makespan())
	if min := vtime.Duration(killAt) + baseline/2; recovered <= min {
		t.Errorf("rerun too cheap: makespan %v, want > %v (wasted attempt + full rerun)", recovered, min)
	}
}
