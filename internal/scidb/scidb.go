// Package scidb implements a SciDB-like shared-nothing array DBMS:
// multidimensional arrays stored as chunks distributed round-robin across
// per-node instances, AFL/AQL-style native operators executed chunk at a
// time, and the stream() interface that pipes chunk data through an
// external process as TSV.
//
// Properties the paper's results hinge on, implemented explicitly:
//
//   - Two ingest paths (Fig 11): from_array() routes every value through
//     the coordinator's Python interface (an order of magnitude slower),
//     while aio_input() parses CSV in parallel on all instances but pays
//     the NIfTI/FITS→CSV conversion and CSV expansion first.
//   - Selections not aligned with the chunk layout pay chunk
//     reconstruction on top of the scan (Fig 12a).
//   - Native dimension aggregates are the fastest mean at small scale
//     (Fig 12b): chunk-parallel partials with a cheap combine.
//   - stream() converts chunks to TSV and back, taxing UDF steps
//     (Fig 12c: slightly slower than Spark/Myria/Dask on denoise).
//   - AQL iterative queries (co-addition) materialize every iteration to
//     disk as temporary arrays — >10× slower than UDF-internal iteration
//     (Fig 12d); the incremental-iteration optimization of Soroush et al.
//     (SSDBM'15) recovers ~6× and is implemented as an option.
//   - Chunk size is a sensitive tuning knob (Section 5.3.1): small chunks
//     multiply per-chunk overhead, oversized chunks starve parallelism.
package scidb

import (
	"fmt"
	"sort"
	"time"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

// Config tunes the SciDB deployment.
type Config struct {
	InstancesPerNode int
	// ChunkBytes is the paper-scale chunk size arrays are stored with.
	// The pipelines split their data into chunks of roughly this size.
	ChunkBytes int64
	// ChunkOverhead is the fixed per-chunk processing cost (metadata,
	// iterator setup, chunk map lookups) charged by every operator.
	ChunkOverhead vtime.Duration
	// Incremental enables the incremental iterative-processing
	// optimization for IterativeAQL (off in the official release).
	Incremental bool
}

// DefaultConfig follows the paper's guidance: one instance per 1–2 cores
// (4 per 8-core node) and the empirically best [1000×1000] chunks
// (~12 MB for a 3-plane float32 image).
func DefaultConfig() Config {
	return Config{
		InstancesPerNode: 4,
		ChunkBytes:       12 << 20,
		ChunkOverhead:    20 * time.Millisecond,
	}
}

// Chunk is one stored chunk of an array: an opaque decoded value plus its
// paper-scale size and the cell-coordinate key it is addressed by.
type Chunk struct {
	Coords string // e.g. "subj-000/vol-003" or "patch-2-1/visit-04"
	Value  any
	Size   int64
}

// Engine is a SciDB deployment on a simulated cluster.
type Engine struct {
	cl      *cluster.Cluster
	model   *cost.Model
	store   *objstore.Store
	cfg     Config
	startup *cluster.Handle
	arrays  map[string]*Array
	// nodes are the machines hosting instances: the cluster nodes alive
	// at deployment. A manual rerun after a node death (RerunOnFailure)
	// deploys a fresh engine on the survivors.
	nodes []int
}

// New deploys SciDB on cl. A nil model uses cost.Default().
func New(cl *cluster.Cluster, store *objstore.Store, model *cost.Model, cfg Config) *Engine {
	if model == nil {
		model = cost.Default()
	}
	def := DefaultConfig()
	if cfg.InstancesPerNode <= 0 {
		cfg.InstancesPerNode = def.InstancesPerNode
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = def.ChunkBytes
	}
	if cfg.ChunkOverhead <= 0 {
		cfg.ChunkOverhead = def.ChunkOverhead
	}
	e := &Engine{cl: cl, model: model, store: store, cfg: cfg, arrays: make(map[string]*Array),
		nodes: cl.AliveNodes()}
	e.startup = cl.Submit(0, nil, model.Startup[cost.SciDB], nil)
	return e
}

// Cluster returns the underlying simulated cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Instances returns the total number of SciDB instances.
func (e *Engine) Instances() int { return len(e.nodes) * e.cfg.InstancesPerNode }

func (e *Engine) nodeOf(inst int) int { return e.nodes[inst/e.cfg.InstancesPerNode] }

// Array is a stored chunked array.
type Array struct {
	Name   string
	Chunks []Chunk
	inst   []int // owning instance per chunk
	ready  []*cluster.Handle
	eng    *Engine
}

// Bytes returns total paper-scale bytes across chunks.
func (a *Array) Bytes() int64 {
	var n int64
	for _, c := range a.Chunks {
		n += c.Size
	}
	return n
}

// NChunks returns the number of chunks.
func (a *Array) NChunks() int { return len(a.Chunks) }

// Done returns a handle completing when the whole array is materialized.
func (a *Array) Done() *cluster.Handle { return a.eng.cl.Barrier(a.ready...) }

// OptimalChunkBytes is the empirically best chunk size (the paper's
// [1000×1000] finding for LSST images, ~12 MB of 3-plane float32 pixels).
const OptimalChunkBytes = 12 << 20

// chunkTime is the modeled duration of running op over one chunk: the
// per-chunk fixed overhead (which dominates when chunks are undersized)
// plus the algorithm time, inflated for oversized chunks whose working
// set overflows the per-instance buffer cache (the mechanism behind the
// paper's +22%/+55% at [1500²]/[2000²], Section 5.3.1).
func (e *Engine) chunkTime(op cost.Op, c Chunk) vtime.Duration {
	d := e.cfg.ChunkOverhead + e.model.AlgTime(op, c.Size)
	if c.Size > OptimalChunkBytes {
		over := float64(c.Size)/float64(OptimalChunkBytes) - 1
		d = vtime.Duration(float64(d) * (1 + 1.4*over))
	}
	return d
}

// placeChunks assigns chunks round-robin to instances.
func (e *Engine) placeChunks(n int) []int {
	inst := make([]int, n)
	for i := range inst {
		inst[i] = i % e.Instances()
	}
	return inst
}

// IngestFromArray loads chunks through the coordinator using the
// SciDB-py from_array() interface: every value crosses the Python
// boundary on the master, serially, before chunks are scattered to
// instances — the SciDB-1 path in Fig 11.
func (e *Engine) IngestFromArray(name string, chunks []Chunk) (*Array, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("scidb: from_array with no chunks")
	}
	a := &Array{Name: name, Chunks: chunks, inst: e.placeChunks(len(chunks)), eng: e}
	prev := e.startup
	for i, c := range chunks {
		// Serial coordinator conversion: Python per-value marshalling is
		// ~20× slower than bulk IPC.
		conv := e.model.PyIPCTime(c.Size) * 20
		h := e.cl.Submit(0, []*cluster.Handle{prev}, conv, nil)
		node := e.nodeOf(a.inst[i])
		x := e.cl.Transfer(0, node, c.Size, h)
		wr := e.cl.DiskWrite(node, c.Size, x)
		a.ready = append(a.ready, wr)
		prev = h // next chunk's conversion starts after this one
	}
	e.arrays[name] = a
	return a, nil
}

// IngestAio loads chunks with the accelerated aio_input() library: the
// caller first converts source files to CSV (expansion × the binary
// size), instances then parse the CSV in parallel and store chunks — the
// SciDB-2 path in Fig 11.
func (e *Engine) IngestAio(name string, chunks []Chunk, expansion float64) (*Array, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("scidb: aio_input with no chunks")
	}
	if expansion <= 0 {
		expansion = 2.5
	}
	a := &Array{Name: name, Chunks: chunks, inst: e.placeChunks(len(chunks)), eng: e}
	for i, c := range chunks {
		node := e.nodeOf(a.inst[i])
		csvBytes := int64(float64(c.Size) * expansion)
		// Convert source → CSV, fetch, parse, store: all per-instance.
		conv := e.model.FormatTime(c.Size) + e.model.TSVTime(csvBytes)
		fetch := e.model.S3Fetch(1, csvBytes)
		parse := e.model.CSVTime(csvBytes)
		key := fmt.Sprintf("%s/aio%d", name, i)
		h := e.cl.Submit(node, []*cluster.Handle{e.startup}, e.model.Jitter(key, conv+fetch+parse), nil)
		a.ready = append(a.ready, e.cl.DiskWrite(node, c.Size, h))
	}
	e.arrays[name] = a
	return a, nil
}

// Filter applies a native AFL selection. When aligned is false the
// predicate cuts across the chunk layout and every chunk is read,
// sub-set, and reassembled into result chunks (extra work over the scan);
// aligned selections just drop whole chunks.
func (a *Array) Filter(name string, aligned bool, keep func(Chunk) bool) *Array {
	e := a.eng
	out := &Array{Name: name, eng: e}
	for i, c := range a.Chunks {
		node := e.nodeOf(a.inst[i])
		rd := e.cl.DiskRead(node, c.Size, a.ready[i])
		d := e.chunkTime(cost.Filter, c)
		if !aligned {
			// Extract cells and rebuild output chunks.
			d += 2*e.model.AlgTime(cost.Filter, c.Size) + e.cfg.ChunkOverhead
		}
		h := e.cl.Submit(node, []*cluster.Handle{rd}, e.model.Jitter(name+c.Coords, d), nil)
		if keep(c) {
			out.Chunks = append(out.Chunks, c)
			out.inst = append(out.inst, a.inst[i])
			out.ready = append(out.ready, h)
		} else {
			// The scan work still happened; fold it into the barrier.
			out.ready = append(out.ready, h)
		}
	}
	return out
}

// MapChunks applies a native per-chunk operator (window, apply, ...).
func (a *Array) MapChunks(name string, op cost.Op, f func(Chunk) Chunk) *Array {
	e := a.eng
	out := &Array{Name: name, eng: e, inst: append([]int(nil), a.inst...)}
	for i, c := range a.Chunks {
		node := e.nodeOf(a.inst[i])
		rd := e.cl.DiskRead(node, c.Size, a.ready[i])
		nc := f(c)
		h := e.cl.Submit(node, []*cluster.Handle{rd}, e.model.Jitter(name+c.Coords, e.chunkTime(op, c)), nil)
		out.Chunks = append(out.Chunks, nc)
		out.ready = append(out.ready, h)
	}
	return out
}

// Aggregate groups chunks by groupKey and combines each group with a
// native aggregate (e.g. avg along the volume dimension): chunk-local
// partials run in parallel, then partials stream to the group's home
// instance for a cheap final combine. This is SciDB's specialized fast
// path (Fig 12b).
func (a *Array) Aggregate(name string, op cost.Op, groupKey func(Chunk) string, combine func(key string, group []Chunk) Chunk) *Array {
	e := a.eng
	type member struct {
		idx int
		h   *cluster.Handle
	}
	groups := make(map[string][]member)
	var order []string
	for i, c := range a.Chunks {
		k := groupKey(c)
		node := e.nodeOf(a.inst[i])
		rd := e.cl.DiskRead(node, c.Size, a.ready[i])
		// Chunk-local partial aggregate.
		h := e.cl.Submit(node, []*cluster.Handle{rd}, e.model.Jitter(name+c.Coords, e.chunkTime(op, c)), nil)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], member{i, h})
	}
	sort.Strings(order)
	out := &Array{Name: name, eng: e}
	for gi, k := range order {
		ms := groups[k]
		home := gi % e.Instances()
		homeNode := e.nodeOf(home)
		var deps []*cluster.Handle
		var gchunks []Chunk
		for _, m := range ms {
			// Partials are tiny relative to chunk data; transfer cost is
			// the partial size (~chunk size / group cardinality).
			partial := a.Chunks[m.idx].Size / int64(len(ms))
			deps = append(deps, e.cl.Transfer(e.nodeOf(a.inst[m.idx]), homeNode, partial, m.h))
			gchunks = append(gchunks, a.Chunks[m.idx])
		}
		nc := combine(k, gchunks)
		h := e.cl.Submit(homeNode, deps, e.cfg.ChunkOverhead+e.model.AlgTime(op, nc.Size), nil)
		out.Chunks = append(out.Chunks, nc)
		out.inst = append(out.inst, home)
		out.ready = append(out.ready, h)
	}
	return out
}

// Stream pipes every chunk through an external process via the stream()
// interface: the chunk is encoded as TSV, handed to the process, and the
// TSV result parsed back — the only way to run legacy Python against
// SciDB data (Section 4.1).
func (a *Array) Stream(name string, op cost.Op, f func(Chunk) Chunk) *Array {
	e := a.eng
	out := &Array{Name: name, eng: e, inst: append([]int(nil), a.inst...)}
	for i, c := range a.Chunks {
		node := e.nodeOf(a.inst[i])
		rd := e.cl.DiskRead(node, c.Size, a.ready[i])
		nc := f(c)
		// TSV is ~2.5× the binary size; encode, cross the process
		// boundary both ways, decode.
		tsvBytes := int64(float64(c.Size) * 2.5)
		d := e.chunkTime(op, c) +
			2*e.model.TSVTime(tsvBytes) +
			2*e.model.PyIPCTime(tsvBytes)
		h := e.cl.Submit(node, []*cluster.Handle{rd}, e.model.Jitter(name+c.Coords, d), nil)
		out.Chunks = append(out.Chunks, nc)
		out.ready = append(out.ready, h)
	}
	return out
}

// IterativeAQL runs an iterative computation expressed as AQL statements:
// each iteration applies step to every chunk group and — in the official
// release — materializes the full intermediate array to disk and reads it
// back, for each of the statements an iteration comprises (mean, std,
// filter-outliers, merge: 4 passes). With cfg.Incremental, later
// iterations touch only the fraction of chunks that changed, the
// optimization the paper cites for a 6× improvement (Section 5.2.4).
//
// The step function receives the iteration number and the full chunk set
// and mutates/returns the next chunk set (real computation).
func (a *Array) IterativeAQL(name string, iters int, op cost.Op, step func(iter int, chunks []Chunk) []Chunk) *Array {
	e := a.eng
	const passesPerIter = 4
	cur := &Array{Name: name, eng: e,
		Chunks: append([]Chunk(nil), a.Chunks...),
		inst:   append([]int(nil), a.inst...),
		ready:  append([]*cluster.Handle(nil), a.ready...),
	}
	for it := 0; it < iters; it++ {
		next := step(it, cur.Chunks)
		nReady := make([]*cluster.Handle, len(next))
		for i := range next {
			inst := cur.inst[i%len(cur.inst)]
			node := e.nodeOf(inst)
			c := cur.Chunks[i%len(cur.Chunks)]
			dep := cur.ready[i%len(cur.ready)]
			h := dep
			for pass := 0; pass < passesPerIter; pass++ {
				// Each AQL statement parses, plans, re-opens chunk
				// iterators, and updates the temporary array's chunk
				// map: a large per-chunk-per-statement coordination
				// overhead on top of the scan itself (the reason small
				// chunks are ~3× slower, Section 5.3.1).
				full := 18*e.cfg.ChunkOverhead + e.chunkTime(op, c)
				frac := 1.0
				if e.cfg.Incremental && !(it == 0 && pass == 0) {
					// Incremental iterative processing touches only the
					// chunks whose cells changed (Soroush et al.): both
					// the data and the coordination shrink.
					frac = 1.0 / 8
				}
				eff := int64(float64(c.Size) * frac)
				rd := e.cl.DiskRead(node, eff, h)
				cmp := e.cl.Submit(node, []*cluster.Handle{rd},
					e.model.Jitter(fmt.Sprintf("%s/it%d/p%d/%s", name, it, pass, c.Coords),
						vtime.Duration(float64(full)*frac)), nil)
				h = e.cl.DiskWrite(node, eff, cmp)
			}
			nReady[i] = h
		}
		// AQL statements are barriers: the next iteration starts after
		// every chunk of this one is materialized.
		bar := e.cl.Barrier(nReady...)
		for i := range nReady {
			nReady[i] = bar
		}
		cur = &Array{Name: name, eng: e, Chunks: next, inst: e.placeChunks(len(next)), ready: nReady}
	}
	return cur
}

// Lookup returns a stored array by name (arrays are registered by the
// ingest paths and by afl.Run's store() statements).
func (e *Engine) Lookup(name string) (*Array, error) {
	a, ok := e.arrays[name]
	if !ok {
		return nil, fmt.Errorf("scidb: unknown array %q", name)
	}
	return a, nil
}

// Register stores an array under name in the engine's catalog (AFL's
// store() operator).
func (e *Engine) Register(name string, a *Array) { e.arrays[name] = a }
