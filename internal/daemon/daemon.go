// Package daemon assembles the experiment service — scheduler, result
// cache, sweep manager, journal recovery, metrics registry, and HTTP
// API — into one embeddable unit. cmd/imagebenchd wraps it in a real
// listener; the loadgen harness, the bench serve/... cases, and the
// tests boot the identical daemon in-process, so what gets load-tested
// is what ships.
package daemon

import (
	"fmt"
	"net/http"
	"time"

	"imagebench/internal/obs"
	"imagebench/internal/results"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// Config is everything needed to stand up the service; main fills it
// from flags, tests and the loadgen harness fill it directly.
type Config struct {
	Workers    int
	QueueDepth int
	// MaxJobs bounds the retained job index (see runner.Options.MaxJobs);
	// 0 means the runner default. Evicted jobs remain pollable through
	// their tombstones as long as their results stay cached.
	MaxJobs  int
	CacheDir string // "" = memory-only result cache
	Journal  string // "" = no job journal
	SweepDir string // "" = sweeps are not persisted
}

// Daemon bundles the service's long-lived state. Construction performs
// crash recovery: pending journaled jobs are resubmitted and persisted
// sweeps re-adopted, with completed cells rehydrating from the cache.
type Daemon struct {
	Cache   *results.Cache
	Sched   *runner.Scheduler
	Sweeps  *sweep.Manager
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	Handler http.Handler

	journal *runner.FileJournal

	RecoveredJobs   int
	RecoveredSweeps int
	Warnings        []string
}

// New constructs and recovers a daemon.
func New(cfg Config) (*Daemon, error) {
	cache, err := results.Open(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	// The observability spine is always on: a registry for /metrics and
	// a tracer for job/sweep span trees. Neither perturbs the
	// simulations — spans record around them, never inside their timing.
	d := &Daemon{Cache: cache, Metrics: obs.NewRegistry(), Tracer: obs.NewTracer()}
	obs.RegisterGoMetrics(d.Metrics)
	registerCacheMetrics(d.Metrics, cache)

	opts := runner.Options{
		Workers: cfg.Workers, QueueDepth: cfg.QueueDepth, MaxJobs: cfg.MaxJobs,
		Cache: cache, Tracer: d.Tracer, Metrics: d.Metrics,
	}
	if cfg.Journal != "" && cfg.CacheDir == "" {
		// The journal retires a job on OpDone because its result is
		// rereadable from the disk cache; with a memory-only cache that
		// premise is false and completed results vanish on restart.
		d.Warnings = append(d.Warnings,
			"-journal without -cache-dir: completed results will not survive a restart (only pending jobs recover)")
	}
	if cfg.Journal != "" {
		// Compact before opening for append: completed history is
		// dropped (the cache holds those results), so the journal stays
		// proportional to pending work instead of total traffic. Must
		// happen before OpenJournal — compaction renames the file.
		if _, err := runner.CompactJournal(cfg.Journal); err != nil {
			d.Warnings = append(d.Warnings, fmt.Sprintf("journal compaction: %v", err))
		}
		j, err := runner.OpenJournal(cfg.Journal)
		if err != nil {
			return nil, err
		}
		d.journal = j
		opts.Journal = j
	}
	d.Sched = runner.New(opts)

	// Recovery is best-effort: a journal resubmission that no longer
	// resolves (an experiment renamed between versions) or a stale sweep
	// spec must not keep the daemon from serving fresh traffic.
	if cfg.Journal != "" {
		n, err := runner.Recover(cfg.Journal, d.Sched)
		d.RecoveredJobs = n
		if err != nil {
			d.Warnings = append(d.Warnings, fmt.Sprintf("journal recovery: %v", err))
		}
	}
	mgr, err := sweep.NewManager(d.Sched, cache, cfg.SweepDir, time.Now)
	if err != nil {
		d.Close()
		return nil, err
	}
	d.Sweeps = mgr
	mgr.RegisterMetrics(d.Metrics)
	n, err := mgr.Recover()
	d.RecoveredSweeps = n
	if err != nil {
		d.Warnings = append(d.Warnings, fmt.Sprintf("sweep recovery: %v", err))
	}

	d.Handler = newServer(d.Sched, d.Cache, d.Sweeps, d.Metrics)
	return d, nil
}

// registerCacheMetrics exposes the result cache's traffic counters,
// hits split by serving layer (the in-memory map vs a disk
// read-through). The cache keeps its own atomics; the registry samples
// them at scrape time.
func registerCacheMetrics(m *obs.Registry, cache *results.Cache) {
	hits := m.NewCounterVec("imagebench_cache_hits_total",
		"Result-cache hits, by the layer that served the entry.", "layer")
	hits.WithFunc(func() float64 { return float64(cache.Stats().MemHits) }, "memory")
	hits.WithFunc(func() float64 { return float64(cache.Stats().DiskHits) }, "disk")
	m.NewCounterFunc("imagebench_cache_misses_total",
		"Result-cache misses.",
		func() float64 { return float64(cache.Stats().Misses) })
	m.NewGaugeFunc("imagebench_cache_entries",
		"Entries in the result cache (memory and disk union).",
		func() float64 { return float64(cache.Stats().Entries) })
}

// Close drains the scheduler, then closes the journal — worker
// completion records are still being appended until Close returns.
func (d *Daemon) Close() {
	d.Sched.Close()
	if d.journal != nil {
		d.journal.Close()
	}
}
