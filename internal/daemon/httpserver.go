package daemon

import (
	"net/http"
	"time"
)

// Timeouts are the connection-lifetime guards for the daemon's
// listeners. Before these existed the daemon set only
// ReadHeaderTimeout, so a client that sent headers and then stalled —
// or never read its response — pinned a connection (and its handler
// goroutine) forever; enough of them and the daemon is down without a
// single malformed request. The loadgen harness's stalled-agent mode
// exists to prove these fire.
type Timeouts struct {
	// ReadHeader bounds reading the request line and headers.
	ReadHeader time.Duration
	// Read bounds reading the entire request, body included. Request
	// bodies here are small JSON specs (capped at 1 MiB), so a minute
	// of allowance is generous even for a slow legitimate client.
	Read time.Duration
	// Write bounds the whole response, which for this API includes the
	// handler itself: a POST with "wait":true holds the connection
	// until every submitted job terminates. The default covers quick-
	// profile waits with a wide margin; operators running full-profile
	// sweeps with wait=true should raise -write-timeout accordingly.
	Write time.Duration
	// Idle bounds keep-alive connections between requests.
	Idle time.Duration
}

// DefaultTimeouts are the daemon's stock guards.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		ReadHeader: 10 * time.Second,
		Read:       time.Minute,
		Write:      15 * time.Minute,
		Idle:       2 * time.Minute,
	}
}

// NewHTTPServer returns an http.Server for handler with every timeout
// class set. Both of imagebenchd's listeners (API and pprof) are built
// through this, so neither can regress to timeout-less again.
func NewHTTPServer(addr string, handler http.Handler, t Timeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}
