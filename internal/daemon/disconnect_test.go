package daemon

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/obs"
	"imagebench/internal/results"
)

// errorWriter is a ResponseWriter whose body writes always fail — the
// deterministic stand-in for a client that disconnected mid-response
// (real closed-socket writes only fail once kernel buffers drain, so
// they cannot be asserted on reliably).
type errorWriter struct {
	header http.Header
	status int
}

func (w *errorWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *errorWriter) WriteHeader(status int) { w.status = status }

func (w *errorWriter) Write([]byte) (int, error) {
	return 0, errors.New("client gone: broken pipe")
}

// TestResponseWriteErrorAccounting drives every daemon response path
// that can lose a body write against a failing writer and requires each
// one to land in the respWriteErrs counter instead of vanishing.
func TestResponseWriteErrorAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	cache, err := results.Open("")
	if err != nil {
		t.Fatal(err)
	}
	profile, err := core.ProfileByName("quick")
	if err != nil {
		t.Fatal(err)
	}
	table := core.NewTable("seeded", "virtual s", []string{"r"}, []string{"c"})
	table.Set("r", "c", 1)
	entry := &results.Entry{
		Key:        results.Key("zz-test-http", profile),
		Experiment: "zz-test-http",
		Profile:    profile,
		Table:      table,
	}
	if err := cache.Put(entry); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		serve func(s *server, w http.ResponseWriter)
	}{
		{"writeJSON", func(s *server, w http.ResponseWriter) {
			s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}},
		{"writeError", func(s *server, w http.ResponseWriter) {
			s.writeError(w, http.StatusRequestTimeout, "client went away while waiting")
		}},
		{"prom metrics WriteText", func(s *server, w http.ResponseWriter) {
			r := httptest.NewRequest("GET", "/metrics", nil)
			s.handlePromMetrics(w, r)
		}},
		{"result plain-text render", func(s *server, w http.ResponseWriter) {
			r := httptest.NewRequest("GET", "/v1/results/"+entry.Key, nil)
			r.SetPathValue("key", entry.Key)
			r.Header.Set("Accept", "text/plain")
			s.handleResult(w, r)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &server{cache: cache, metrics: reg, start: time.Now()}
			c.serve(s, &errorWriter{})
			if got := s.respWriteErrs.Load(); got != 1 {
				t.Errorf("respWriteErrs = %d after failed write, want 1", got)
			}
			// The same response on a healthy writer is not an error.
			s2 := &server{cache: cache, metrics: reg, start: time.Now()}
			c.serve(s2, httptest.NewRecorder())
			if got := s2.respWriteErrs.Load(); got != 0 {
				t.Errorf("respWriteErrs = %d after successful write, want 0", got)
			}
		})
	}
}

var (
	slowRuns  atomic.Int64
	slowOnce  sync.Once
	slowDelay = 400 * time.Millisecond
)

func registerSlowFake() {
	slowOnce.Do(func() {
		core.Register(&core.Experiment{
			ID: "zz-test-slow", Title: "fake slow", Paper: "n/a",
			Run: func(ctx context.Context, p core.Profile) (*core.Table, error) {
				slowRuns.Add(1)
				time.Sleep(slowDelay)
				tb := core.NewTable("slow", "virtual s", []string{"r"}, []string{"c"})
				tb.Set("r", "c", 1)
				return tb, nil
			},
			Check: func(*core.Table) error { return nil },
		})
	})
}

// TestClientDisconnectMidWait submits wait=true work on each parking
// endpoint, kills the client while the handler is parked, and requires
// that the daemon (a) unparks promptly instead of leaking the handler
// until job completion, (b) stays healthy, and (c) finishes the
// orphaned work anyway — the disconnect must cost the client its
// response, never the daemon its job.
func TestClientDisconnectMidWait(t *testing.T) {
	registerSlowFake()
	cases := []struct {
		name string
		path string
		body string
	}{
		{"jobs wait", "/v1/jobs", `{"experiments":["zz-test-slow"],"profile":"quick","wait":true}`},
		{"sweeps wait", "/v1/sweeps", `{"experiments":["zz-test-slow"],"profiles":["quick","full"],"wait":true}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ts, sched, _ := newTestServer(t)

			ctx, cancel := context.WithCancel(context.Background())
			req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+c.path,
				bytes.NewReader([]byte(c.body)))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")

			done := make(chan error, 1)
			start := time.Now()
			go func() {
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
					err = errors.New("request succeeded despite cancellation")
				}
				done <- err
			}()
			// Let the handler park on the wait, then yank the client.
			time.Sleep(50 * time.Millisecond)
			cancel()

			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("client error = %v, want context.Canceled", err)
				}
			case <-time.After(slowDelay):
				t.Fatal("client still blocked after cancellation")
			}
			if elapsed := time.Since(start); elapsed >= slowDelay {
				t.Errorf("handler held the connection %v, want prompt unpark on disconnect", elapsed)
			}

			// The daemon survived the disconnect...
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("healthz after disconnect: resp=%v err=%v", resp, err)
			}
			resp.Body.Close()

			// ...and the orphaned work still runs to completion.
			deadline := time.Now().Add(10 * slowDelay)
			for {
				st := sched.Stats()
				if st.InFlight == 0 && st.Executed > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("orphaned work never finished: %+v", st)
				}
				time.Sleep(20 * time.Millisecond)
			}
		})
	}
}
