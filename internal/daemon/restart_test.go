package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// The restart test registers its own experiments ("zz-rs-*"): five fast
// ones and one that blocks on a gate, so a sweep can be frozen
// mid-flight with some cells completed and some not. A shared "crashed"
// flag makes every fake fail instantly while the first daemon is being
// torn down, which is how a kill looks to the Journal: accepted
// submissions with no completion.

var (
	rsRegister sync.Once
	rsCrashed  atomic.Bool
	rsRuns     sync.Map // experiment ID -> *atomic.Int64 successful runs

	rsGateMu sync.Mutex
	rsGate   chan struct{} // nil = the gate experiment does not block
)

func rsSetGate(g chan struct{}) {
	rsGateMu.Lock()
	rsGate = g
	rsGateMu.Unlock()
}

func rsIDs() []string {
	return []string{"zz-rs-a", "zz-rs-b", "zz-rs-cgate", "zz-rs-d", "zz-rs-e", "zz-rs-f"}
}

func rsRunCount(id string) int64 {
	c, _ := rsRuns.Load(id)
	return c.(*atomic.Int64).Load()
}

func rsRegisterFakes() {
	rsRegister.Do(func() {
		for _, id := range rsIDs() {
			id := id
			counter := &atomic.Int64{}
			rsRuns.Store(id, counter)
			core.Register(&core.Experiment{
				ID: id, Title: "restart fake " + id, Paper: "n/a",
				Run: func(context.Context, core.Profile) (*core.Table, error) {
					if rsCrashed.Load() {
						return nil, errors.New("simulated crash")
					}
					if id == "zz-rs-cgate" {
						rsGateMu.Lock()
						g := rsGate
						rsGateMu.Unlock()
						if g != nil {
							<-g
						}
						if rsCrashed.Load() {
							return nil, errors.New("simulated crash")
						}
					}
					counter.Add(1)
					t := core.NewTable("restart", "virtual s", []string{"r"}, []string{"c"})
					t.Set("r", "c", 1)
					return t, nil
				},
				Check: func(*core.Table) error { return nil },
			})
		}
	})
}

func rsGetSweep(t *testing.T, url, id string) sweep.Info {
	t.Helper()
	var info sweep.Info
	resp, err := http.Get(url + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sweeps/%s = %d", id, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestDaemonRestartMidSweep is the end-to-end acceptance test: a sweep
// is submitted over HTTP, the daemon is killed mid-sweep and restarted
// against the same cache/journal/sweep dirs, and the restarted daemon
// serves every completed cell from the journal+cache without
// re-executing any of them while finishing the rest.
func TestDaemonRestartMidSweep(t *testing.T) {
	rsRegisterFakes()
	rsRuns.Range(func(_, c any) bool { c.(*atomic.Int64).Store(0); return true })
	dir := t.TempDir()
	cfg := Config{
		Workers:  1, // serial: cells complete in deterministic order up to the gate
		CacheDir: filepath.Join(dir, "cache"),
		Journal:  filepath.Join(dir, "journal.jsonl"),
		SweepDir: filepath.Join(dir, "sweeps"),
	}

	// --- Phase 1: submit the sweep, let two cells finish, crash. ---
	rsCrashed.Store(false)
	gate := make(chan struct{})
	rsSetGate(gate)
	defer rsSetGate(nil)

	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(d1.Handler)

	body := `{"experiments":["zz-rs-*"]}`
	resp, err := http.Post(ts1.URL+"/v1/sweeps", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var submitted sweep.Info
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.Total != 6 {
		t.Fatalf("sweep submit = %d, %+v; want 202 with 6 cells", resp.StatusCode, submitted)
	}

	// Cells run in sorted order (a, b, cgate, ...) on the single worker;
	// wait until a and b are done and the gate cell holds the worker.
	deadline := time.Now().Add(30 * time.Second)
	for {
		info := rsGetSweep(t, ts1.URL, submitted.ID)
		if info.Done == 2 && info.Running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached mid-flight state: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Crash: every fake now fails instantly, the gate is released into
	// the failure, and the daemon is torn down. The journal is left with
	// the two completions and four submissions that never finished.
	rsCrashed.Store(true)
	close(gate)
	ts1.Close()
	d1.Close()

	for _, id := range []string{"zz-rs-a", "zz-rs-b"} {
		if got := rsRunCount(id); got != 1 {
			t.Fatalf("%s ran %d times before crash, want 1", id, got)
		}
	}

	// --- Phase 2: restart on the same dirs. ---
	rsCrashed.Store(false)
	rsSetGate(nil)
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	ts2 := httptest.NewServer(d2.Handler)
	defer ts2.Close()

	if d2.RecoveredSweeps != 1 {
		t.Errorf("recovered %d sweeps, want 1 (warnings: %v)", d2.RecoveredSweeps, d2.Warnings)
	}
	if d2.RecoveredJobs != 4 {
		t.Errorf("recovered %d pending jobs, want 4 (cgate, d, e, f)", d2.RecoveredJobs)
	}
	if len(d2.Warnings) > 0 {
		t.Errorf("recovery warnings: %v", d2.Warnings)
	}

	// The sweep is immediately addressable and finishes without help.
	var final sweep.Info
	for {
		final = rsGetSweep(t, ts2.URL, submitted.ID)
		if final.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered sweep never finished: %+v", final)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.Done != 6 || final.Failed != 0 {
		t.Fatalf("recovered sweep = %+v, want 6/6 done", final)
	}

	// No completed cell was re-executed; every pending cell ran exactly once.
	for _, id := range rsIDs() {
		if got := rsRunCount(id); got != 1 {
			t.Errorf("%s executed %d times across both processes, want exactly 1", id, got)
		}
	}

	// Completed-before-crash cells are marked cache-served, and their
	// tables are readable through the restarted daemon.
	byExp := map[string]sweep.CellInfo{}
	for _, c := range final.Cells {
		byExp[c.Experiment] = c
	}
	for _, id := range []string{"zz-rs-a", "zz-rs-b"} {
		c := byExp[id]
		if c.Status != runner.StatusDone || !c.CacheHit {
			t.Errorf("pre-crash cell %s = %+v, want done via cache", id, c)
		}
		r, err := http.Get(ts2.URL + "/v1/results/" + c.Key)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("result fetch for %s = %d", id, r.StatusCode)
		}
	}

	// The restarted process executed only the four unfinished cells.
	var m map[string]float64
	mresp, err := http.Get(ts2.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m["jobs_executed"] != 4 {
		t.Errorf("restarted daemon executed %v jobs, want 4", m["jobs_executed"])
	}
}
