package daemon

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Local is an in-process daemon on a loopback listener: the loadgen
// harness's deterministic mode, the bench serve/... cases, and the e2e
// tests all boot the service this way so they measure the same handler
// stack, timeouts included, that imagebenchd ships.
type Local struct {
	*Daemon
	BaseURL string
	srv     *http.Server
}

// StartLocal boots a daemon per cfg and serves it on 127.0.0.1:0.
func StartLocal(cfg Config) (*Local, error) {
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.Close()
		return nil, err
	}
	srv := NewHTTPServer("", d.Handler, DefaultTimeouts())
	go srv.Serve(ln)
	return &Local{
		Daemon:  d,
		BaseURL: "http://" + ln.Addr().String(),
		srv:     srv,
	}, nil
}

// Stop shuts the listener down and closes the daemon.
func (l *Local) Stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	l.srv.Shutdown(ctx)
	l.Daemon.Close()
}

// Kill severs the daemon's HTTP surface immediately — listener and
// every open connection dropped mid-request, nothing drained. This is
// the network-level equivalent of kill -9 for an in-process worker:
// peers see connection resets exactly as they would from a dead
// process. The daemon's goroutines are deliberately left running (a
// kill -9'd process computes right up to the signal too); their work
// is simply unreachable.
func (l *Local) Kill() {
	l.srv.Close()
}
