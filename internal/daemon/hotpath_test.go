package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"imagebench/internal/runner"
)

// submitWait posts a wait=true job and returns its terminal Info.
func submitWait(t *testing.T, baseURL, experiment, profile string) runner.Info {
	t.Helper()
	body := fmt.Sprintf(`{"experiments":[%q],"profile":%q,"wait":true}`, experiment, profile)
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit %s/%s: status %d: %s", experiment, profile, resp.StatusCode, b)
	}
	var out struct {
		Jobs []runner.Info `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 1 {
		t.Fatalf("submit returned %d jobs, want 1", len(out.Jobs))
	}
	return out.Jobs[0]
}

// Regression test for the eviction 404: a job pushed out of the
// retained index by MaxJobs used to vanish from GET /v1/jobs/{id} even
// though its result was still sitting in the cache, so pollers saw
// "unknown job" for work that had succeeded. Evicted terminal jobs must
// answer from their tombstone as long as the result is fetchable.
// Before the EvictedInfo fallback in handleJob this test failed with a
// 404 on the first poll below.
func TestEvictedJobAnswersFromTombstone(t *testing.T) {
	d, err := New(Config{Workers: 2, MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	registerFakes()
	ts := httptest.NewServer(d.Handler)
	t.Cleanup(ts.Close)

	first := submitWait(t, ts.URL, "zz-test-http", "quick")
	if first.Status != runner.StatusDone {
		t.Fatalf("first job status = %s, want done", first.Status)
	}
	// Two more distinct terminated jobs push the first past MaxJobs=2.
	submitWait(t, ts.URL, "zz-test-conc", "quick")
	submitWait(t, ts.URL, "zz-test-http", "full")
	if _, ok := d.Sched.Job(first.ID); ok {
		t.Fatalf("job %s still in the retained index; eviction did not trigger", first.ID)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET evicted job: status %d, want 200 (eviction regression): %s", resp.StatusCode, b)
	}
	var got runner.Info
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Evicted {
		t.Error("evicted job's Info.Evicted = false, want true")
	}
	if got.Status != runner.StatusDone || got.ID != first.ID ||
		got.Experiment != first.Experiment || got.ResultKey != first.ResultKey {
		t.Errorf("tombstone Info mismatch: got %+v, want terminal fields of %+v", got, first)
	}

	// The tombstone's promise is that the result is still fetchable.
	rr, err := http.Get(ts.URL + "/v1/results/" + first.ResultKey)
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Errorf("GET result of evicted job: status %d, want 200", rr.StatusCode)
	}

	// Truly unknown IDs must still 404 — the fallback must not turn the
	// endpoint into a 200-for-anything.
	nf, err := http.Get(ts.URL + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", nf.StatusCode)
	}
}

// The daemon's listeners used to set only ReadHeaderTimeout, so a
// client that stalled mid-body (or mid-headers) pinned its connection
// forever. NewHTTPServer must shed such connections while healthy
// requests keep flowing.
func TestStalledConnectionIsShed(t *testing.T) {
	d, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	timeouts := Timeouts{
		ReadHeader: 200 * time.Millisecond,
		Read:       400 * time.Millisecond,
		Write:      2 * time.Second,
		Idle:       400 * time.Millisecond,
	}
	srv := NewHTTPServer("", d.Handler, timeouts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	base := "http://" + ln.Addr().String()

	// A stalled agent: sends a partial request then goes silent. The
	// server must close the connection once the read timeouts fire,
	// surfacing EOF on our next read instead of hanging.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{\"exper")); err != nil {
		t.Fatal(err)
	}
	// The server may write a 408 before closing; drain until it tears
	// the connection down (EOF or reset). Only a read deadline expiring
	// means the connection was held open — the pre-fix behaviour.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	_, readErr := io.ReadAll(conn)
	var ne net.Error
	if errors.As(readErr, &ne) && ne.Timeout() {
		t.Fatal("server kept the stalled connection open")
	}
	if waited := time.Since(start); waited > 4*time.Second {
		t.Fatalf("stalled connection held for %s; timeouts did not fire", waited)
	}

	// Healthy traffic is unaffected.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after shedding: status %d, want 200", resp.StatusCode)
	}
}
