package daemon

import (
	"strconv"
	"strings"
)

// acceptsPlainText reports whether the request's Accept header asks for
// the text/plain rendering in preference to the default JSON one.
//
// Media ranges are parsed per RFC 9110 §12.5.1: each comma-separated
// range may carry a q-value (default 1), and the quality assigned to a
// concrete media type is that of the most specific matching range
// (exact > type/* > */*). text/plain wins only when its quality is
// positive and strictly greater than application/json's — ties keep
// the server's default representation. So "text/plain" and
// "text/plain;q=0.9, application/json;q=0.1" render text, while
// "application/json, text/plain;q=0" stays JSON (the old substring
// check served that client plain text).
func acceptsPlainText(accept string) bool {
	if strings.TrimSpace(accept) == "" {
		return false
	}
	qPlain := acceptQuality(accept, "text", "plain")
	qJSON := acceptQuality(accept, "application", "json")
	return qPlain > 0 && qPlain > qJSON
}

// acceptQuality returns the effective q-value the Accept header assigns
// to type/subtype, 0 when no range matches. Malformed ranges and
// q-values are skipped rather than failing the whole header — Accept
// is advisory, and the fallback is the default representation.
func acceptQuality(accept, typ, subtype string) float64 {
	bestSpec, q := -1, 0.0
	for _, field := range strings.Split(accept, ",") {
		parts := strings.Split(field, ";")
		mr := strings.TrimSpace(parts[0])
		slash := strings.IndexByte(mr, '/')
		if slash < 0 {
			continue
		}
		rt := strings.ToLower(mr[:slash])
		rs := strings.ToLower(strings.TrimSpace(mr[slash+1:]))
		// Specificity rank: exact media type beats a type/* wildcard
		// beats */*; a range that matches neither is irrelevant here.
		var spec int
		switch {
		case rt == typ && rs == subtype:
			spec = 3
		case rt == typ && rs == "*":
			spec = 2
		case rt == "*" && rs == "*":
			spec = 1
		default:
			continue
		}
		fq := 1.0
		for _, p := range parts[1:] {
			v, ok := strings.CutPrefix(strings.TrimSpace(strings.ToLower(p)), "q=")
			if !ok {
				continue
			}
			if parsed, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && parsed >= 0 && parsed <= 1 {
				fq = parsed
			}
			break // q terminates the range's weight; what follows is accept-ext
		}
		switch {
		case spec > bestSpec:
			bestSpec, q = spec, fq
		case spec == bestSpec && fq > q:
			// Duplicated equally-specific ranges: be liberal, keep the max.
			q = fq
		}
	}
	return q
}
