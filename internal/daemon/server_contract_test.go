package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/results"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// Regression tests for the API-contract bugs a federation coordinator
// cannot tolerate: partial batch submission losing accepted job IDs,
// Accept-header substring matching, and the POST /v1/results ingest
// endpoint the replication path depends on.

var (
	blockStarts   atomic.Int64
	registerBlock sync.Once
)

// registerBlockers registers experiments whose Run blocks until the
// scheduler shuts down, so a test can wedge a one-worker scheduler and
// exercise queue-full submission deterministically.
func registerBlockers() {
	registerBlock.Do(func() {
		for _, id := range []string{"zz-test-block-a", "zz-test-block-b", "zz-test-block-c", "zz-test-block-d"} {
			core.Register(&core.Experiment{
				ID: id, Title: "fake blocker", Paper: "n/a",
				Run: func(ctx context.Context, _ core.Profile) (*core.Table, error) {
					blockStarts.Add(1)
					<-ctx.Done()
					return nil, ctx.Err()
				},
				Check: func(*core.Table) error { return nil },
			})
		}
	})
}

// newTinyServer stands up the handler over a one-worker, one-slot
// scheduler so the third concurrent submission hits ErrQueueFull.
func newTinyServer(t *testing.T) *httptest.Server {
	t.Helper()
	registerBlockers()
	cache, err := results.Open("")
	if err != nil {
		t.Fatal(err)
	}
	sched := runner.New(runner.Options{Workers: 1, QueueDepth: 1, Cache: cache})
	sweeps, err := sweep.NewManager(sched, cache, "", time.Now)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(sched, cache, sweeps, nil))
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})
	return ts
}

// TestSubmitRejectsBatchWithUnknownID proves no job starts when any ID
// in the batch is bad. Pre-fix, handleSubmit submitted in a loop and
// bailed mid-way: fig-like experiments before the bad ID ran anyway
// while the client saw only the error.
func TestSubmitRejectsBatchWithUnknownID(t *testing.T) {
	ts, sched, _ := newTestServer(t)
	resp, _ := postJobs(t, ts.URL, `{"experiments":["zz-test-http","zz-no-such-exp"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if st := sched.Stats(); st.Submitted != 0 {
		t.Errorf("%d jobs submitted from a batch with an unknown ID, want 0", st.Submitted)
	}
	if n := len(sched.Jobs()); n != 0 {
		t.Errorf("job index holds %d jobs, want 0", n)
	}
}

// TestSubmitCapacityReturnsAcceptedJobs wedges a one-worker scheduler,
// then submits a three-job batch: the first queues, the second
// overflows. The 503 must carry the accepted job's info alongside the
// error — pre-fix the body was only {"error": ...} and the client
// could never poll or account for the job it had in fact started.
func TestSubmitCapacityReturnsAcceptedJobs(t *testing.T) {
	ts := newTinyServer(t)
	blockStarts.Store(0)

	// Occupy the lone worker and wait until its job is truly running,
	// so the next submissions deterministically stay queued.
	resp, _, _ := postRaw(t, ts.URL+"/v1/jobs", `{"experiments":["zz-test-block-a"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("wedge submit status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for blockStarts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body, _ := postRaw(t, ts.URL+"/v1/jobs",
		`{"experiments":["zz-test-block-b","zz-test-block-c","zz-test-block-d"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	var out struct {
		Jobs  []runner.Info `json:"jobs"`
		Error string        `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode overflow response %q: %v", body, err)
	}
	if out.Error == "" || !strings.Contains(out.Error, "zz-test-block-c") {
		t.Errorf("error %q does not name the rejected experiment", out.Error)
	}
	if len(out.Jobs) != 1 {
		t.Fatalf("response carries %d accepted jobs, want 1 (the queued zz-test-block-b): %+v", len(out.Jobs), out.Jobs)
	}
	if j := out.Jobs[0]; j.ID == "" || j.Experiment != "zz-test-block-b" {
		t.Errorf("accepted job = %+v, want zz-test-block-b with an ID", j)
	}
	if !strings.Contains(out.Error, "1 of 3") {
		t.Errorf("error %q does not account for the partial batch", out.Error)
	}
	// The surfaced ID is pollable.
	r, err := http.Get(ts.URL + "/v1/jobs/" + out.Jobs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("poll accepted job = %d, want 200", r.StatusCode)
	}
}

func postRaw(t *testing.T, url, body string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp, raw, err
}

// TestSubmitWithOverrides drives the derived-profile form a federation
// coordinator uses to submit individual sweep cells.
func TestSubmitWithOverrides(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, out := postJobs(t, ts.URL,
		`{"experiments":["zz-test-http"],"profile":"quick","overrides":{"clusterNodes":[4]},"wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	jobs := out["jobs"]
	if len(jobs) != 1 || jobs[0].Status != runner.StatusDone {
		t.Fatalf("jobs = %+v", jobs)
	}
	if jobs[0].Profile != "quick+nodes=4" {
		t.Errorf("job profile = %q, want the derived quick+nodes=4", jobs[0].Profile)
	}

	resp, _ = postJobs(t, ts.URL, `{"experiments":["zz-test-http"],"overrides":{"clusterNodes":[0]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid overrides status = %d, want 400", resp.StatusCode)
	}
}

func TestAcceptsPlainText(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"text/plain", true},
		{"TEXT/PLAIN", true},
		{"application/json", false},
		// The regression: the old substring check rendered plain text
		// for a client that explicitly refused it.
		{"application/json, text/plain;q=0", false},
		{"text/plain;q=0", false},
		{"text/plain;q=0.9, application/json;q=0.1", true},
		{"application/json;q=0.5, text/plain", true},
		{"text/*", true},
		{"*/*", false}, // tie: the server's default representation wins
		{"text/plain, application/json", false},
		{"application/*;q=0.2, text/plain;q=0.5", true},
		{"application/json;q=0.8, */*;q=0.1", false},
		{"*/*;q=0.1, text/plain;q=0.5", true},
		{"text/plain ; q=0.4, application/json ; q=0.2", true},
		{"text/plain;q=banana", true}, // malformed q: keep the default 1
		{"garbage", false},
		{"text/plain;charset=utf-8;q=0.2, application/json;q=0.1", true},
	}
	for _, c := range cases {
		if got := acceptsPlainText(c.accept); got != c.want {
			t.Errorf("acceptsPlainText(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

// TestResultAcceptNegotiation is the HTTP-level regression: a client
// that q=0-refuses text/plain must get JSON.
func TestResultAcceptNegotiation(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, out := postJobs(t, ts.URL, `{"experiments":["zz-test-http"],"wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	key := out["jobs"][0].ResultKey

	cases := []struct {
		accept   string
		wantJSON bool
	}{
		{"application/json, text/plain;q=0", true},
		{"text/plain", false},
		{"", true},
	}
	for _, c := range cases {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/results/"+key, nil)
		if c.accept != "" {
			req.Header.Set("Accept", c.accept)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		ct := r.Header.Get("Content-Type")
		r.Body.Close()
		if gotJSON := strings.HasPrefix(ct, "application/json"); gotJSON != c.wantJSON {
			t.Errorf("Accept %q served Content-Type %q", c.accept, ct)
		}
	}
}

// TestWriteJSONEncodeError proves an unmarshalable response value
// becomes a 500 error document, not a 200 with a truncated body.
func TestWriteJSONEncodeError(t *testing.T) {
	rec := httptest.NewRecorder()
	srv := &server{}
	srv.writeJSON(rec, http.StatusOK, map[string]any{"ch": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body %q is not JSON: %v", rec.Body.String(), err)
	}
	if !strings.Contains(e.Error, "encode response") {
		t.Errorf("error = %q", e.Error)
	}
}

// TestResultIngest drives POST /v1/results, the replication path by
// which a table computed on one worker becomes servable from another.
func TestResultIngest(t *testing.T) {
	ts, _, cache := newTestServer(t)
	profile, err := core.ProfileByName("quick")
	if err != nil {
		t.Fatal(err)
	}
	table := core.NewTable("ingested", "virtual s", []string{"r"}, []string{"c"})
	table.Set("r", "c", 42)
	entry := results.Entry{
		Key:        results.Key("zz-test-http", profile),
		Experiment: "zz-test-http",
		Profile:    profile,
		Table:      table,
	}
	body, err := json.Marshal(entry)
	if err != nil {
		t.Fatal(err)
	}

	resp, raw, _ := postRaw(t, ts.URL+"/v1/results", string(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest status = %d: %s", resp.StatusCode, raw)
	}
	got, ok := cache.Get(entry.Key)
	if !ok || got.Table.Get("r", "c") != 42 {
		t.Fatalf("ingested entry not in cache: ok=%v got=%+v", ok, got)
	}
	// And it is servable over the read path.
	var fetched results.Entry
	if r := getJSON(t, ts.URL+"/v1/results/"+entry.Key, &fetched); r.StatusCode != http.StatusOK {
		t.Errorf("fetch after ingest = %d", r.StatusCode)
	}

	// A key that does not match the entry's content is rejected: the
	// cache is content-addressed and a forged key would poison lookups.
	forged := entry
	forged.Key = strings.Repeat("ab", 32)
	body, _ = json.Marshal(forged)
	if resp, _, _ := postRaw(t, ts.URL+"/v1/results", string(body)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("forged-key ingest status = %d, want 400", resp.StatusCode)
	}
	if _, ok := cache.Get(forged.Key); ok {
		t.Error("forged key was stored")
	}

	// No table, and not-JSON, are client errors.
	noTable := entry
	noTable.Table = nil
	body, _ = json.Marshal(noTable)
	if resp, _, _ := postRaw(t, ts.URL+"/v1/results", string(body)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tableless ingest status = %d, want 400", resp.StatusCode)
	}
	if resp, _, _ := postRaw(t, ts.URL+"/v1/results", `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON ingest status = %d, want 400", resp.StatusCode)
	}
}
