package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/engine"
	"imagebench/internal/obs"
	"imagebench/internal/results"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// server wires the scheduler, result cache, and sweep manager into the
// HTTP API. It is constructed by newServer so tests can drive it
// through httptest.
type server struct {
	sched   *runner.Scheduler
	cache   *results.Cache
	sweeps  *sweep.Manager
	metrics *obs.Registry // may be nil: /metrics then serves 503
	start   time.Time

	// respWriteErrs counts response bodies the daemon failed to write
	// (almost always a client that disconnected mid-response, e.g.
	// while parked on wait=true). The failure cannot be reported to
	// that client — the connection is gone — so it is accounted here
	// and surfaced via /metrics.json and the Prometheus counter
	// instead of being silently dropped.
	respWriteErrs atomic.Int64
	respWriteErrC *obs.Counter // may be nil (no registry)
}

// newServer returns the daemon's HTTP handler over the given scheduler,
// cache, sweep manager, and metrics registry.
func newServer(sched *runner.Scheduler, cache *results.Cache, sweeps *sweep.Manager, metrics *obs.Registry) http.Handler {
	s := &server{sched: sched, cache: cache, sweeps: sweeps, metrics: metrics, start: time.Now()}
	if metrics != nil {
		s.respWriteErrC = metrics.NewCounter("imagebench_daemon_response_write_errors_total",
			"Response bodies the daemon failed to write (client gone mid-response).")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/engines", s.handleEngines)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results", s.handleResultKeys)
	mux.HandleFunc("POST /v1/results", s.handleResultIngest)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	return mux
}

// writeJSON emits v with indentation; these are operator-facing
// endpoints, so readability beats byte count. Encoding happens before
// the status line is written: an unmarshalable value must become a 500,
// not a 200 with a truncated body that a coordinator would try to
// parse. A failed body write is recorded (see respWriteErrs) — by then
// the status line is on the wire and the client is usually gone, so
// accounting is all that remains.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// apiError is a plain string struct, so this inner marshal
		// cannot itself fail.
		status = http.StatusInternalServerError
		b, _ = json.MarshalIndent(apiError{Error: fmt.Sprintf("encode response: %v", err)}, "", "  ")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(b, '\n')); err != nil {
		s.noteRespWriteErr()
	}
}

type apiError struct {
	Error string `json:"error"`
}

func (s *server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// noteRespWriteErr accounts one failed response write.
func (s *server) noteRespWriteErr() {
	s.respWriteErrs.Add(1)
	if s.respWriteErrC != nil {
		s.respWriteErrC.Add(1)
	}
}

// maxRequestBytes caps JSON request bodies. The daemon's requests are
// small specs (experiment IDs, profiles, override lists); 1 MiB is
// orders of magnitude above any legitimate payload.
const maxRequestBytes = 1 << 20

// decodeRequest decodes a JSON body with the two defenses every
// network-facing decoder needs: a hard size cap (a huge body would
// otherwise be buffered without bound) and rejection of unknown fields
// (a typoed "experimens" key fails loudly instead of submitting an empty
// job). It writes the error response itself and reports whether decoding
// succeeded.
func (s *server) decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxRequestBytes)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return false
	}
	return true
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handlePromMetrics serves the registry in the Prometheus text
// exposition format (version 0.0.4) — the scrape target. The JSON
// counters live on at /metrics.json for humans and scripts.
func (s *server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		s.writeError(w, http.StatusServiceUnavailable, "metrics registry not configured")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WriteText(w); err != nil {
		s.noteRespWriteErr()
	}
}

// metrics is the expvar-style counter payload served at /metrics.json.
type metrics struct {
	UptimeSeconds           float64 `json:"uptime_seconds"`
	Workers                 int     `json:"workers"`
	JobsSubmitted           int64   `json:"jobs_submitted"`
	JobsExecuted            int64   `json:"jobs_executed"`
	JobsFailed              int64   `json:"jobs_failed"`
	JobsDeduped             int64   `json:"jobs_deduped"`
	JobsCacheHits           int64   `json:"jobs_cache_hits"`
	JobsInFlight            int     `json:"jobs_in_flight"`
	JobsRunning             int64   `json:"jobs_running"`
	CacheHits               int64   `json:"cache_hits"`
	CacheMemHits            int64   `json:"cache_mem_hits"`
	CacheDiskHits           int64   `json:"cache_disk_hits"`
	CacheMisses             int64   `json:"cache_misses"`
	CacheEntries            int     `json:"cache_entries"`
	Sweeps                  int     `json:"sweeps"`
	JournalErrors           int64   `json:"journal_errors"`
	ResponseWriteErrors     int64   `json:"response_write_errors"`
	VirtualSecondsSimulated float64 `json:"virtual_seconds_simulated"`
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	cst := s.cache.Stats()
	s.writeJSON(w, http.StatusOK, metrics{
		UptimeSeconds:           time.Since(s.start).Seconds(),
		Workers:                 st.Workers,
		JobsSubmitted:           st.Submitted,
		JobsExecuted:            st.Executed,
		JobsFailed:              st.Failed,
		JobsDeduped:             st.Deduped,
		JobsCacheHits:           st.CacheHits,
		JobsInFlight:            st.InFlight,
		JobsRunning:             st.Running,
		CacheHits:               cst.Hits,
		CacheMemHits:            cst.MemHits,
		CacheDiskHits:           cst.DiskHits,
		CacheMisses:             cst.Misses,
		CacheEntries:            cst.Entries,
		Sweeps:                  s.sweeps.Len(),
		JournalErrors:           st.JournalErrors,
		ResponseWriteErrors:     s.respWriteErrs.Load(),
		VirtualSecondsSimulated: st.VirtualSeconds,
	})
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Paper string `json:"paper"`
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	all := core.All()
	out := make([]experimentInfo, 0, len(all))
	for _, e := range all {
		out = append(out, experimentInfo{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleEngines serves the engine registry: each registered system
// driver with its capability set (which comparisons it participates
// in) and its fault-recovery mechanism, in engine.Info wire form.
func (s *server) handleEngines(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, engine.Describe())
}

// submitRequest is the POST /v1/jobs body. Experiments lists IDs, or
// the single element "all" for the whole registry; profile is "quick"
// or "full" (default "quick"). Overrides, when present, derive a
// profile variant (core.Profile.Apply) — the form a federation
// coordinator submits individual sweep cells in, since derived
// profiles like "quick+nodes=4" have no standalone name. With
// wait=true the response is delayed until every job terminates, which
// makes one-shot curl runs trivial.
type submitRequest struct {
	Experiments []string        `json:"experiments"`
	Profile     string          `json:"profile"`
	Overrides   *core.Overrides `json:"overrides,omitempty"`
	Wait        bool            `json:"wait"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if len(req.Experiments) == 0 {
		s.writeError(w, http.StatusBadRequest, "experiments list is empty (use [\"all\"] for everything)")
		return
	}
	if req.Profile == "" {
		req.Profile = "quick"
	}
	profile, err := core.ProfileByName(req.Profile)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Overrides != nil {
		if err := req.Overrides.Validate(); err != nil {
			s.writeError(w, http.StatusBadRequest, "overrides: %v", err)
			return
		}
		profile = profile.Apply(*req.Overrides)
	}
	ids := req.Experiments
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	}

	// Validate every ID before submitting any: a bad ID midway through
	// the loop must not leave the earlier experiments silently running
	// with the client told only "unknown experiment".
	for _, id := range ids {
		if _, err := core.Lookup(id); err != nil {
			s.writeError(w, http.StatusBadRequest, "%v (nothing submitted)", err)
			return
		}
	}

	jobs := make([]*runner.Job, 0, len(ids))
	for _, id := range ids {
		j, err := s.sched.Submit(id, profile)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, runner.ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			// Jobs accepted before the failure keep running; the client
			// must learn their IDs or it can never poll, wait on, or
			// account for the partial batch.
			s.writeJSON(w, status, map[string]any{
				"jobs":  snapshotJobs(jobs),
				"error": fmt.Sprintf("submit %s: %v (%d of %d jobs accepted)", id, err, len(jobs), len(ids)),
			})
			return
		}
		jobs = append(jobs, j)
	}

	status := http.StatusAccepted
	if req.Wait {
		for _, j := range jobs {
			select {
			case <-j.Done():
			case <-r.Context().Done():
				s.writeError(w, http.StatusRequestTimeout, "client went away while waiting")
				return
			}
		}
		status = http.StatusOK
	}
	s.writeJSON(w, status, map[string]any{"jobs": snapshotJobs(jobs)})
}

// snapshotJobs collects the Info snapshots of jobs, never nil (so the
// JSON field is [] rather than null).
func snapshotJobs(jobs []*runner.Job) []runner.Info {
	infos := make([]runner.Info, 0, len(jobs))
	for _, j := range jobs {
		infos = append(infos, j.Snapshot())
	}
	return infos
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": snapshotJobs(s.sched.Jobs())})
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sched.Job(id)
	if !ok {
		// The job index is bounded: a terminated job may have been
		// evicted while a poller still holds its ID. As long as its
		// terminal state is reconstructible (and, for done jobs, the
		// result still cached), answer from the tombstone instead of
		// 404ing work that succeeded.
		if info, ok := s.sched.EvictedInfo(id); ok {
			s.writeJSON(w, http.StatusOK, info)
			return
		}
		s.writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *server) handleResultKeys(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"keys": s.cache.Keys()})
}

// maxIngestBytes caps POST /v1/results bodies. A replicated entry
// carries a full result table, so the cap is larger than the job-spec
// cap but still far above any real table.
const maxIngestBytes = 8 << 20

// handleResultIngest accepts a complete results.Entry and installs it
// in the local cache — the federation coordinator's replication path,
// by which a table computed on one worker becomes servable from every
// worker. The cache is content-addressed, so the entry's key is
// recomputed from its experiment and profile and must match: accepting
// a mismatched key would poison every later lookup of that key.
func (s *server) handleResultIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var entry results.Entry
	if err := dec.Decode(&entry); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxIngestBytes)
			return
		}
		s.writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if entry.Table == nil {
		s.writeError(w, http.StatusBadRequest, "entry has no table")
		return
	}
	if want := results.Key(entry.Experiment, entry.Profile); entry.Key != want {
		s.writeError(w, http.StatusBadRequest, "key %.12s does not match content (want %.12s)", entry.Key, want)
		return
	}
	if err := s.cache.Put(&entry); err != nil {
		s.writeError(w, http.StatusInternalServerError, "store entry: %v", err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"key": entry.Key})
}

// sweepRequest is the POST /v1/sweeps body: a sweep spec plus wait.
// With wait=true the response is delayed until every cell terminates.
type sweepRequest struct {
	sweep.Spec
	Wait bool `json:"wait"`
}

func (s *server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	sw, existing, err := s.sweeps.Submit(req.Spec)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, runner.ErrQueueFull), errors.Is(err, runner.ErrClosed):
			status = http.StatusServiceUnavailable
		case sw != nil:
			// The sweep is executing but could not be persisted: an I/O
			// problem on our side, not a client error.
			status = http.StatusInternalServerError
		}
		s.writeError(w, status, "%v", err)
		return
	}
	status := http.StatusAccepted
	if existing {
		status = http.StatusOK
	}
	if req.Wait {
		if err := sw.Wait(r.Context()); err != nil {
			s.writeError(w, http.StatusRequestTimeout, "client went away while waiting")
			return
		}
		status = http.StatusOK
	}
	s.writeJSON(w, status, sw.Info(true))
}

func (s *server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	list := s.sweeps.List()
	infos := make([]sweep.Info, 0, len(list))
	for _, sw := range list {
		infos = append(infos, sw.Info(false))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"sweeps": infos})
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("id")
	sw, ok := s.sweeps.Get(sid)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown sweep %q", sid)
		return
	}
	s.writeJSON(w, http.StatusOK, sw.Info(true))
}

// handleResult serves one cached table: JSON by default, the CLI's
// fixed-width rendering when the client asks for text/plain.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	entry, ok := s.cache.Get(key)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no cached result for key %q", key)
		return
	}
	if acceptsPlainText(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := fmt.Fprintf(w, "# %s  (profile %s, key %s)\n%s",
			entry.Experiment, entry.Profile.Name, entry.Key, entry.Table.Render()); err != nil {
			s.noteRespWriteErr()
		}
		return
	}
	s.writeJSON(w, http.StatusOK, entry)
}
