package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/obs"
	"imagebench/internal/results"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// The API tests register synthetic experiments so they can count
// simulation executions exactly and stay fast; the real registry is
// still exercised through GET /v1/experiments.

var (
	httpRuns  atomic.Int64
	concRuns  atomic.Int64
	registerO sync.Once
)

func registerFakes() {
	registerO.Do(func() {
		fake := func(counter *atomic.Int64) func(context.Context, core.Profile) (*core.Table, error) {
			return func(context.Context, core.Profile) (*core.Table, error) {
				counter.Add(1)
				time.Sleep(10 * time.Millisecond)
				t := core.NewTable("fake", "virtual s", []string{"r"}, []string{"c"})
				t.Set("r", "c", 7)
				return t, nil
			}
		}
		core.Register(&core.Experiment{
			ID: "zz-test-http", Title: "fake http", Paper: "n/a",
			Run: fake(&httpRuns), Check: func(*core.Table) error { return nil },
		})
		core.Register(&core.Experiment{
			ID: "zz-test-conc", Title: "fake concurrent", Paper: "n/a",
			Run: fake(&concRuns), Check: func(*core.Table) error { return nil },
		})
	})
}

// newTestServer stands up the full daemon handler over a fresh
// scheduler and memory cache.
func newTestServer(t *testing.T) (*httptest.Server, *runner.Scheduler, *results.Cache) {
	t.Helper()
	registerFakes()
	cache, err := results.Open("")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	registerCacheMetrics(reg, cache)
	sched := runner.New(runner.Options{Workers: 4, Cache: cache, Metrics: reg, Tracer: obs.NewTracer()})
	sweeps, err := sweep.NewManager(sched, cache, "", time.Now)
	if err != nil {
		t.Fatal(err)
	}
	sweeps.RegisterMetrics(reg)
	ts := httptest.NewServer(newServer(sched, cache, sweeps, reg))
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})
	return ts, sched, cache
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

func postJobs(t *testing.T, url string, body string) (*http.Response, map[string][]runner.Info) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out map[string][]runner.Info
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST /v1/jobs: decode %q: %v", raw, err)
		}
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var body map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, body)
	}
}

func TestListExperiments(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var exps []struct{ ID, Title, Paper string }
	resp := getJSON(t, ts.URL+"/v1/experiments", &exps)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(exps) < 24 {
		t.Errorf("listed %d experiments, want at least the paper's 24", len(exps))
	}
	found := false
	for _, e := range exps {
		if e.ID == "fig11" && e.Title != "" && e.Paper != "" {
			found = true
		}
	}
	if !found {
		t.Error("fig11 missing or incomplete in experiment listing")
	}
}

// TestListEngines pins the GET /v1/engines contract: exactly the five
// evaluated systems, sorted, each with its capability set and recovery
// kind — the wire form of the engine registry.
func TestListEngines(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var engines []struct {
		Name         string   `json:"name"`
		Capabilities []string `json:"capabilities"`
		Recovery     string   `json:"recovery"`
	}
	resp := getJSON(t, ts.URL+"/v1/engines", &engines)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(engines) != 5 {
		t.Fatalf("listed %d engines, want the 5 evaluated systems", len(engines))
	}
	wantRecovery := map[string]string{
		"Dask":       "task-resubmit",
		"Myria":      "query-restart",
		"SciDB":      "manual-rerun",
		"Spark":      "lineage-recompute",
		"TensorFlow": "checkpoint-restart",
	}
	wantNames := []string{"Dask", "Myria", "SciDB", "Spark", "TensorFlow"} // sorted
	for i, e := range engines {
		if e.Name != wantNames[i] {
			t.Errorf("engine[%d] = %s, want %s (sorted)", i, e.Name, wantNames[i])
			continue
		}
		if e.Recovery != wantRecovery[e.Name] {
			t.Errorf("%s recovery = %q, want %q", e.Name, e.Recovery, wantRecovery[e.Name])
		}
		if len(e.Capabilities) == 0 {
			t.Errorf("%s lists no capabilities", e.Name)
		}
		hasFT := false
		for _, c := range e.Capabilities {
			if c == "fault-tolerance" {
				hasFT = true
			}
		}
		if !hasFT {
			t.Errorf("%s missing fault-tolerance capability: %v", e.Name, e.Capabilities)
		}
	}
}

func TestJobLifecycleAndResults(t *testing.T) {
	ts, _, _ := newTestServer(t)

	resp, out := postJobs(t, ts.URL, `{"experiments":["zz-test-http"],"profile":"quick","wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("waited submit status = %d", resp.StatusCode)
	}
	jobs := out["jobs"]
	if len(jobs) != 1 {
		t.Fatalf("got %d jobs, want 1", len(jobs))
	}
	job := jobs[0]
	if job.Status != runner.StatusDone || job.Experiment != "zz-test-http" || job.ResultKey == "" {
		t.Fatalf("job = %+v, want done with result key", job)
	}

	// GET /v1/jobs/{id}
	var got runner.Info
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("job fetch status = %d", resp.StatusCode)
	}
	if got.ID != job.ID || got.Status != runner.StatusDone {
		t.Errorf("job fetch = %+v", got)
	}

	// GET /v1/jobs (listing)
	var listing map[string][]runner.Info
	getJSON(t, ts.URL+"/v1/jobs", &listing)
	if len(listing["jobs"]) != 1 {
		t.Errorf("job listing has %d jobs, want 1", len(listing["jobs"]))
	}

	// GET /v1/results (key listing)
	var keys map[string][]string
	getJSON(t, ts.URL+"/v1/results", &keys)
	if len(keys["keys"]) != 1 || keys["keys"][0] != job.ResultKey {
		t.Errorf("result keys = %v, want [%s]", keys["keys"], job.ResultKey)
	}

	// GET /v1/results/{key} as JSON
	var entry results.Entry
	if resp := getJSON(t, ts.URL+"/v1/results/"+job.ResultKey, &entry); resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch status = %d", resp.StatusCode)
	}
	if entry.Experiment != "zz-test-http" || entry.Table.Get("r", "c") != 7 {
		t.Errorf("cached entry = %+v", entry)
	}

	// GET /v1/results/{key} rendered as text
	req, _ := http.NewRequest("GET", ts.URL+"/v1/results/"+job.ResultKey, nil)
	req.Header.Set("Accept", "text/plain")
	tresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	text, _ := io.ReadAll(tresp.Body)
	if ct := tresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %s", ct)
	}
	if !strings.Contains(string(text), "fake") || !strings.Contains(string(text), "7.00") {
		t.Errorf("rendered table missing content:\n%s", text)
	}
}

// TestRepeatedRequestServedFromCache is the acceptance criterion: an
// identical second request is answered from the result cache — the hit
// counter increments and no second simulation runs.
func TestRepeatedRequestServedFromCache(t *testing.T) {
	ts, _, _ := newTestServer(t)
	httpRuns.Store(0)

	body := `{"experiments":["zz-test-http"],"profile":"quick","wait":true}`
	if resp, _ := postJobs(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}
	resp, out := postJobs(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second submit status = %d", resp.StatusCode)
	}
	if jobs := out["jobs"]; len(jobs) != 1 || !jobs[0].CacheHit || jobs[0].Status != runner.StatusDone {
		t.Fatalf("second submit jobs = %+v, want instant cache hit", out["jobs"])
	}
	if got := httpRuns.Load(); got != 1 {
		t.Errorf("simulation ran %d times, want 1", got)
	}
	var m map[string]float64
	getJSON(t, ts.URL+"/metrics.json", &m)
	if m["jobs_executed"] != 1 {
		t.Errorf("jobs_executed = %v, want 1", m["jobs_executed"])
	}
	if m["cache_hits"] < 1 {
		t.Errorf("cache_hits = %v, want >= 1", m["cache_hits"])
	}
	if m["virtual_seconds_simulated"] != 7 {
		t.Errorf("virtual_seconds_simulated = %v, want 7", m["virtual_seconds_simulated"])
	}
}

// TestConcurrentIdenticalSubmitsExecuteOnce fires N identical POSTs
// concurrently and proves the simulation executed exactly once across
// single-flight dedup and the result cache.
func TestConcurrentIdenticalSubmitsExecuteOnce(t *testing.T) {
	ts, _, _ := newTestServer(t)
	concRuns.Store(0)

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := postJobs(t, ts.URL, `{"experiments":["zz-test-conc"],"wait":true}`)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			jobs := out["jobs"]
			if len(jobs) != 1 || jobs[0].Status != runner.StatusDone {
				errs <- fmt.Errorf("jobs = %+v", jobs)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := concRuns.Load(); got != 1 {
		t.Errorf("simulation executed %d times under %d concurrent identical requests, want exactly 1", got, n)
	}
	var m map[string]float64
	getJSON(t, ts.URL+"/metrics.json", &m)
	if m["jobs_executed"] != 1 {
		t.Errorf("jobs_executed = %v, want 1", m["jobs_executed"])
	}
	if m["jobs_deduped"]+m["cache_hits"] != n-1 {
		t.Errorf("deduped (%v) + cache hits (%v) = %v, want %d",
			m["jobs_deduped"], m["cache_hits"], m["jobs_deduped"]+m["cache_hits"], n-1)
	}
}

func TestSubmitValidation(t *testing.T) {
	ts, _, _ := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"experiments":[]}`, http.StatusBadRequest},
		{`{"experiments":["nope"]}`, http.StatusBadRequest},
		{`{"experiments":["fig11"],"profile":"huge"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if resp, _ := postJobs(t, ts.URL, c.body); resp.StatusCode != c.want {
			t.Errorf("POST %q = %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

func TestRequestBodyLimits(t *testing.T) {
	ts, _, _ := newTestServer(t)
	// A body over the cap is rejected with 413 before any decoding.
	huge := `{"experiments":["` + strings.Repeat("x", maxRequestBytes) + `"]}`
	for _, path := range []string{"/v1/jobs", "/v1/sweeps"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with oversized body: status %d, want 413", path, resp.StatusCode)
		}
	}
	// A body within the cap still works.
	resp, _ := postJobs(t, ts.URL, `{"experiments":["zz-test-http"],"wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST /v1/jobs under the cap: status %d", resp.StatusCode)
	}
}

func TestRejectsUnknownFields(t *testing.T) {
	ts, _, _ := newTestServer(t)
	// A typoed key must fail loudly, not silently submit an empty job.
	for path, body := range map[string]string{
		"/v1/jobs":   `{"experimens":["zz-test-http"]}`,
		"/v1/sweeps": `{"experiments":["zz-test-http"],"profles":["quick"]}`,
	} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		var apiErr map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatalf("POST %s: decode error body: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with unknown field: status %d, want 400", path, resp.StatusCode)
		}
		if !strings.Contains(apiErr["error"], "unknown field") {
			t.Errorf("POST %s: error %q does not name the unknown field", path, apiErr["error"])
		}
	}
}

func TestNotFounds(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for _, path := range []string{
		"/v1/jobs/job-12345",
		"/v1/results/" + strings.Repeat("ab", 32),
		"/v1/results/not-a-key",
	} {
		if resp := getJSON(t, ts.URL+path, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestMetricsShape(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var m map[string]any
	resp := getJSON(t, ts.URL+"/metrics.json", &m)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	for _, k := range []string{
		"uptime_seconds", "workers", "jobs_submitted", "jobs_executed",
		"jobs_failed", "jobs_deduped", "jobs_in_flight", "jobs_running",
		"cache_hits", "cache_misses", "cache_entries", "sweeps",
		"journal_errors", "virtual_seconds_simulated",
	} {
		if _, ok := m[k]; !ok {
			t.Errorf("metrics missing %q", k)
		}
	}
}

// TestSweepEndpoint drives the acceptance criterion: a ≥6-cell grid
// submitted through POST /v1/sweeps completes with per-cell results,
// is idempotent on resubmission, and is inspectable via GET.
func TestSweepEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t)
	httpRuns.Store(0)
	concRuns.Store(0)

	body := `{"experiments":["zz-test-http","zz-test-conc"],
	          "overrides":[{"clusterNodes":[4]},{"clusterNodes":[8]},{"clusterNodes":[16]}],
	          "wait":true}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var info sweep.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep submit status = %d", resp.StatusCode)
	}
	if info.Total != 6 || info.Done != 6 || info.Failed != 0 || !info.Finished() {
		t.Fatalf("sweep info = %+v, want 6/6 done", info)
	}
	if len(info.Cells) != 6 {
		t.Fatalf("sweep returned %d cells, want 6", len(info.Cells))
	}
	profiles := map[string]bool{}
	for _, c := range info.Cells {
		if c.Status != runner.StatusDone || c.Key == "" {
			t.Errorf("cell %+v not done with key", c)
		}
		profiles[c.Profile] = true
		// Every cell's result is individually retrievable.
		var entry results.Entry
		if r := getJSON(t, ts.URL+"/v1/results/"+c.Key, &entry); r.StatusCode != http.StatusOK {
			t.Errorf("cell result fetch = %d", r.StatusCode)
		}
	}
	if len(profiles) != 3 {
		t.Errorf("cells span %d derived profiles, want 3: %v", len(profiles), profiles)
	}
	if got := httpRuns.Load() + concRuns.Load(); got != 6 {
		t.Errorf("executed %d simulations, want 6", got)
	}

	// GET /v1/sweeps/{id} serves the same aggregate.
	var fetched sweep.Info
	if r := getJSON(t, ts.URL+"/v1/sweeps/"+info.ID, &fetched); r.StatusCode != http.StatusOK {
		t.Fatalf("sweep fetch = %d", r.StatusCode)
	}
	if fetched.ID != info.ID || fetched.Done != 6 || len(fetched.Cells) != 6 {
		t.Errorf("fetched sweep = %+v", fetched)
	}

	// GET /v1/sweeps lists it without cells.
	var listing map[string][]sweep.Info
	getJSON(t, ts.URL+"/v1/sweeps", &listing)
	if n := len(listing["sweeps"]); n != 1 {
		t.Errorf("sweep listing has %d entries, want 1", n)
	} else if cells := listing["sweeps"][0].Cells; len(cells) != 0 {
		t.Errorf("listing includes %d cells, want none", len(cells))
	}

	// Identical resubmission: 200, same sweep, nothing re-executed.
	resp2, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var again sweep.Info
	json.NewDecoder(resp2.Body).Decode(&again)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || again.ID != info.ID {
		t.Errorf("resubmit = %d id %s, want 200 id %s", resp2.StatusCode, again.ID, info.ID)
	}
	if got := httpRuns.Load() + concRuns.Load(); got != 6 {
		t.Errorf("idempotent resubmit re-executed: %d runs", got)
	}

	var m map[string]float64
	getJSON(t, ts.URL+"/metrics.json", &m)
	if m["sweeps"] != 1 {
		t.Errorf("metrics sweeps = %v, want 1", m["sweeps"])
	}
}

func TestSweepValidationAndNotFound(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for _, body := range []string{
		`{}`,
		`{"experiments":["no-such-*"]}`,
		`{"experiments":["zz-test-http"],"profiles":["huge"]}`,
		`{"experiments":["zz-test-http"],"overrides":[{"clusterNodes":[0]}]}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /v1/sweeps %q = %d, want 400", body, resp.StatusCode)
		}
	}
	if resp := getJSON(t, ts.URL+"/v1/sweeps/sw-000000000000", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep = %d, want 404", resp.StatusCode)
	}
}
