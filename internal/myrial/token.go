package myrial

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens of MyriaL.
type TokenKind int

// Token kinds. Keywords are case-insensitive in MyriaL source; the lexer
// canonicalizes them to upper case in Token.Text.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokComma    // ,
	TokSemi     // ;
	TokDot      // .
	TokStar     // *
	TokEq       // =
	TokNeq      // <>
	TokLt       // <
	TokLeq      // <=
	TokGt       // >
	TokGeq      // >=
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokComma:
		return "','"
	case TokSemi:
		return "';'"
	case TokDot:
		return "'.'"
	case TokStar:
		return "'*'"
	case TokEq:
		return "'='"
	case TokNeq:
		return "'<>'"
	case TokLt:
		return "'<'"
	case TokLeq:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGeq:
		return "'>='"
	}
	return "token?"
}

// keywords is the set of reserved words. PYUDF/PYUDA are recognized as
// keywords so calls are unambiguous from column references.
var keywords = map[string]bool{
	"SCAN": true, "SELECT": true, "FROM": true, "WHERE": true,
	"EMIT": true, "AS": true, "AND": true, "STORE": true,
	"PYUDF": true, "PYUDA": true, "GROUP": true, "BY": true,
}

// Token is one lexical token with its source position (1-based line).
type Token struct {
	Kind TokenKind
	Text string
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber, TokKeyword:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return t.Kind.String()
	}
}

// lexer splits MyriaL source into tokens. MyriaL uses SQL-style line
// comments (--) and Python-style (#) — both are supported.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src), line: 1} }

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() rune {
	r := l.peek()
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.next()
		case r == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.next()
			}
		case r == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.next()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// Lex tokenizes the whole source, ending with a TokEOF token.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		l.skipSpaceAndComments()
		line := l.line
		if l.pos >= len(l.src) {
			out = append(out, Token{Kind: TokEOF, Line: line})
			return out, nil
		}
		r := l.next()
		switch {
		case isIdentStart(r):
			start := l.pos - 1
			for l.pos < len(l.src) && isIdentPart(l.peek()) {
				l.next()
			}
			text := string(l.src[start:l.pos])
			if keywords[strings.ToUpper(text)] {
				out = append(out, Token{Kind: TokKeyword, Text: strings.ToUpper(text), Line: line})
			} else {
				out = append(out, Token{Kind: TokIdent, Text: text, Line: line})
			}
		case unicode.IsDigit(r):
			start := l.pos - 1
			for l.pos < len(l.src) && (unicode.IsDigit(l.peek()) || l.peek() == '.') {
				l.next()
			}
			out = append(out, Token{Kind: TokNumber, Text: string(l.src[start:l.pos]), Line: line})
		case r == '\'' || r == '"':
			quote := r
			start := l.pos
			for l.pos < len(l.src) && l.peek() != quote {
				if l.peek() == '\n' {
					return nil, fmt.Errorf("myrial: line %d: unterminated string", line)
				}
				l.next()
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("myrial: line %d: unterminated string", line)
			}
			text := string(l.src[start:l.pos])
			l.next() // closing quote
			out = append(out, Token{Kind: TokString, Text: text, Line: line})
		case r == '(':
			out = append(out, Token{Kind: TokLParen, Line: line})
		case r == ')':
			out = append(out, Token{Kind: TokRParen, Line: line})
		case r == '[':
			out = append(out, Token{Kind: TokLBracket, Line: line})
		case r == ']':
			out = append(out, Token{Kind: TokRBracket, Line: line})
		case r == ',':
			out = append(out, Token{Kind: TokComma, Line: line})
		case r == ';':
			out = append(out, Token{Kind: TokSemi, Line: line})
		case r == '.':
			out = append(out, Token{Kind: TokDot, Line: line})
		case r == '*':
			out = append(out, Token{Kind: TokStar, Line: line})
		case r == '=':
			out = append(out, Token{Kind: TokEq, Text: "=", Line: line})
		case r == '<':
			switch l.peek() {
			case '>':
				l.next()
				out = append(out, Token{Kind: TokNeq, Text: "<>", Line: line})
			case '=':
				l.next()
				out = append(out, Token{Kind: TokLeq, Text: "<=", Line: line})
			default:
				out = append(out, Token{Kind: TokLt, Text: "<", Line: line})
			}
		case r == '>':
			if l.peek() == '=' {
				l.next()
				out = append(out, Token{Kind: TokGeq, Text: ">=", Line: line})
			} else {
				out = append(out, Token{Kind: TokGt, Text: ">", Line: line})
			}
		default:
			return nil, fmt.Errorf("myrial: line %d: unexpected character %q", line, r)
		}
	}
}
