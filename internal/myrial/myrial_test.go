package myrial

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/myria"
	"imagebench/internal/objstore"
)

// --- lexer -------------------------------------------------------------

func TestLexKindsAndKeywords(t *testing.T) {
	toks, err := Lex("T1 = SCAN(Images); -- comment\n# python comment\n[select T1.img from T1 where x <= 3.5 and y <> 'abc'];")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokenKind{
		TokIdent, TokEq, TokKeyword, TokLParen, TokIdent, TokRParen, TokSemi,
		TokLBracket, TokKeyword, TokIdent, TokDot, TokIdent, TokKeyword, TokIdent,
		TokKeyword, TokIdent, TokLeq, TokNumber, TokKeyword, TokIdent, TokNeq,
		TokString, TokRBracket, TokSemi, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
	// Keywords canonicalize to upper case regardless of source case.
	if toks[8].Text != "SELECT" {
		t.Errorf("keyword not canonicalized: %q", toks[8].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a ! b", "'newline\nin string'"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("a\nb\n\nc")
	if err != nil {
		t.Fatal(err)
	}
	lines := []int{1, 2, 4}
	for i, want := range lines {
		if toks[i].Line != want {
			t.Errorf("token %d line = %d, want %d", i, toks[i].Line, want)
		}
	}
}

// --- parser ------------------------------------------------------------

// fig7 is the paper's Figure 7 MyriaL program (denoising step of the
// neuroscience use case), modulo the connection boilerplate and the
// paper's stale T1. qualifiers inside the EMIT (which reference an alias
// that is out of scope after the join).
const fig7 = `
T1 = SCAN(Images);
T2 = SCAN(Mask);
Joined = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask
          FROM T1, T2
          WHERE T1.subjId = T2.subjId];
Denoised = [FROM Joined EMIT
            PYUDF(Denoise, img, mask) AS img, subjId, imgId];
STORE(Denoised, DenoisedImages);
`

func TestParseFig7(t *testing.T) {
	prog, err := Parse(fig7)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 5 {
		t.Fatalf("got %d statements, want 5", len(prog.Stmts))
	}
	scan, ok := prog.Stmts[0].(*AssignStmt)
	if !ok || scan.Name != "T1" {
		t.Fatalf("stmt 0: %v", prog.Stmts[0])
	}
	if se, ok := scan.Expr.(*ScanExpr); !ok || se.Table != "Images" {
		t.Fatalf("stmt 0 expr: %v", scan.Expr)
	}
	join, ok := prog.Stmts[2].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 2: %v", prog.Stmts[2])
	}
	sel, ok := join.Expr.(*SelectExpr)
	if !ok {
		t.Fatalf("stmt 2 expr: %T", join.Expr)
	}
	if len(sel.From) != 2 || len(sel.Where) != 1 || len(sel.Items) != 4 {
		t.Fatalf("join shape: from=%d where=%d items=%d", len(sel.From), len(sel.Where), len(sel.Items))
	}
	emit, ok := prog.Stmts[3].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 3: %v", prog.Stmts[3])
	}
	ee, ok := emit.Expr.(*EmitExpr)
	if !ok || ee.From != "Joined" {
		t.Fatalf("stmt 3 expr: %v", emit.Expr)
	}
	if ee.Items[0].Call == nil || ee.Items[0].Call.Func != "Denoise" || ee.Items[0].Alias != "img" {
		t.Fatalf("emit item 0: %+v", ee.Items[0])
	}
	st, ok := prog.Stmts[4].(*StoreStmt)
	if !ok || st.Rel != "Denoised" || st.As != "DenoisedImages" {
		t.Fatalf("stmt 4: %v", prog.Stmts[4])
	}
}

func TestParseRoundTrip(t *testing.T) {
	// String() output of a parsed program parses back to the same string.
	prog, err := Parse(fig7)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("reparse: %v\nprinted:\n%s", err, prog.String())
	}
	if prog.String() != again.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", prog.String(), again.String())
	}
}

func TestParseGroupBy(t *testing.T) {
	prog, err := Parse(`M = [SELECT T.subjId, PYUDA(MeanVol, T.img) AS mean FROM T GROUP BY T.subjId];`)
	if err != nil {
		t.Fatal(err)
	}
	sel := prog.Stmts[0].(*AssignStmt).Expr.(*SelectExpr)
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Col != "subjId" {
		t.Fatalf("group by: %+v", sel.GroupBy)
	}
	if !sel.Items[1].Call.Aggregate {
		t.Error("PYUDA not marked aggregate")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // empty program
		"T1 = SCAN(Images)",                 // missing semicolon
		"T1 = SELECT x FROM y;",             // select outside brackets
		"T1 = [SELECT FROM y];",             // missing items
		"T1 = [FROM x EMIT];",               // missing emit items
		"STORE(a);",                         // missing output name
		"T1 = [SELECT a FROM b WHERE c=];",  // missing operand
		"= SCAN(x);",                        // missing name
		"T1 = [SELECT a FROM b GROUP c];",   // GROUP without BY
		"T1 = [SELECT a.b.c FROM b];",       // over-qualified column
		"T1 = SCAN(Images); T1 = [WHERE];",  // bad bracket form
		"T1 = [SELECT * FROM a WHERE 1<2] ", // missing bracket close semi
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// quick-check: the lexer terminates and never panics on arbitrary input.
func TestLexNoPanic(t *testing.T) {
	f := func(s string) bool {
		_, _ = Lex(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// quick-check: printing any successfully parsed identifier program is
// stable under reparse.
func TestParsePrintStability(t *testing.T) {
	f := func(a, b uint8) bool {
		src := fmt.Sprintf("R%d = SCAN(T%d); STORE(R%d, Out%d);", a, b, a, a)
		p1, err := Parse(src)
		if err != nil {
			return false
		}
		p2, err := Parse(p1.String())
		return err == nil && p1.String() == p2.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- execution ---------------------------------------------------------

// testEngine builds a small Myria deployment with Images and Mask base
// tables mirroring the neuroscience schema: nSubj subjects × nVols
// volumes, each volume a float64 payload; one mask per subject.
func testEngine(t *testing.T, nSubj, nVols int) (*myria.Engine, *Env) {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cl := cluster.New(cfg)
	store := objstore.New()
	for s := 0; s < nSubj; s++ {
		for v := 0; v < nVols; v++ {
			key := fmt.Sprintf("images/s%02d/v%03d", s, v)
			store.Put(key, []byte{byte(s), byte(v)}, 1<<20)
		}
		store.Put(fmt.Sprintf("masks/s%02d", s), []byte{byte(s)}, 1<<10)
	}
	eng := myria.New(cl, store, nil, myria.DefaultConfig())

	imgSchema := Schema{Key: []string{"subjId", "imgId"}, Cols: []string{"subjId", "imgId", "img"}}
	images, err := eng.Ingest("Images", "images/", func(o objstore.Object) []myria.Tuple {
		subj, vol := int(o.Data[0]), int(o.Data[1])
		row := Row{
			"subjId": {V: fmt.Sprintf("s%02d", subj)},
			"imgId":  {V: vol},
			"img":    {V: float64(vol), Size: o.ModelBytes},
		}
		return []myria.Tuple{imgSchema.TupleOf(row)}
	})
	if err != nil {
		t.Fatal(err)
	}
	maskSchema := Schema{Key: []string{"subjId"}, Cols: []string{"subjId", "mask"}}
	masks, err := eng.Ingest("Mask", "masks/", func(o objstore.Object) []myria.Tuple {
		row := Row{
			"subjId": {V: fmt.Sprintf("s%02d", int(o.Data[0]))},
			"mask":   {V: 0.5, Size: o.ModelBytes},
		}
		return []myria.Tuple{maskSchema.TupleOf(row)}
	})
	if err != nil {
		t.Fatal(err)
	}

	env := NewEnv()
	env.DefineTable("Images", imgSchema, images)
	env.DefineTable("Mask", maskSchema, masks)
	return eng, env
}

func TestRunFig7(t *testing.T) {
	const nSubj, nVols = 3, 4
	eng, env := testEngine(t, nSubj, nVols)
	env.DefineUDF("Denoise", cost.Denoise, func(args []Cell) []Cell {
		img := args[0].V.(float64)
		mask := args[1].V.(float64)
		return []Cell{{V: img + mask, Size: args[0].Size}}
	})

	res, err := Run(eng, fig7, env)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := res.Stored["DenoisedImages"]
	if !ok {
		t.Fatalf("missing stored output; have %v", keysOf(res.Stored))
	}
	rows := Rows(out)
	if len(rows) != nSubj*nVols {
		t.Fatalf("got %d denoised rows, want %d", len(rows), nSubj*nVols)
	}
	for _, r := range rows {
		img := r["img"].V.(float64)
		want := float64(r["imgId"].V.(int)) + 0.5
		if img != want {
			t.Errorf("subj %v vol %v: img=%v, want %v", r["subjId"].V, r["imgId"].V, img, want)
		}
		if _, hasMask := r["mask"]; hasMask {
			t.Error("mask column leaked through EMIT projection")
		}
	}
	if res.Done == nil {
		t.Fatal("nil completion handle")
	}
}

func TestRunFilterPushdown(t *testing.T) {
	eng, env := testEngine(t, 2, 6)
	res, err := Run(eng, `
		T1 = SCAN(Images);
		B0 = [SELECT * FROM T1 WHERE T1.imgId < 2];
		STORE(B0, B0Images);
	`, env)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res.Stored["B0Images"])
	if len(rows) != 2*2 {
		t.Fatalf("got %d b0 rows, want 4", len(rows))
	}
	for _, r := range rows {
		if id := r["imgId"].V.(int); id >= 2 {
			t.Errorf("row with imgId=%d passed the b0 filter", id)
		}
	}
}

func TestRunProjection(t *testing.T) {
	eng, env := testEngine(t, 1, 3)
	res, err := Run(eng, `
		T1 = SCAN(Images);
		P = [SELECT T1.subjId, T1.imgId FROM T1 WHERE T1.imgId >= 1];
		STORE(P, Projected);
	`, env)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res.Stored["Projected"])
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if _, ok := r["img"]; ok {
			t.Error("img column survived projection")
		}
		if len(r) != 2 {
			t.Errorf("row has %d columns, want 2: %v", len(r), r)
		}
	}
}

func TestRunGroupByUDA(t *testing.T) {
	const nSubj, nVols = 3, 5
	eng, env := testEngine(t, nSubj, nVols)
	env.DefineUDA("MeanVol", cost.Mean, func(group [][]Cell) Cell {
		var sum float64
		for _, args := range group {
			sum += args[0].V.(float64)
		}
		return Cell{V: sum / float64(len(group)), Size: 8}
	})
	res, err := Run(eng, `
		T1 = SCAN(Images);
		M = [SELECT T1.subjId, PYUDA(MeanVol, T1.img) AS meanImg FROM T1];
		STORE(M, Means);
	`, env)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res.Stored["Means"])
	if len(rows) != nSubj {
		t.Fatalf("got %d groups, want %d", len(rows), nSubj)
	}
	want := (0.0 + 1 + 2 + 3 + 4) / 5
	for _, r := range rows {
		if got := r["meanImg"].V.(float64); got != want {
			t.Errorf("subject %v mean = %v, want %v", r["subjId"].V, got, want)
		}
	}
}

func TestRunJoinMatchesMaskPerSubject(t *testing.T) {
	const nSubj, nVols = 4, 3
	eng, env := testEngine(t, nSubj, nVols)
	res, err := Run(eng, `
		T1 = SCAN(Images);
		T2 = SCAN(Mask);
		J = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask FROM T1, T2 WHERE T1.subjId = T2.subjId];
		STORE(J, Joined);
	`, env)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res.Stored["Joined"])
	if len(rows) != nSubj*nVols {
		t.Fatalf("join produced %d rows, want %d", len(rows), nSubj*nVols)
	}
	for _, r := range rows {
		if r["mask"].V.(float64) != 0.5 {
			t.Errorf("bad mask value in joined row: %v", r)
		}
	}
}

func TestRunEmitFlatmap(t *testing.T) {
	eng, env := testEngine(t, 1, 2)
	env.DefineUDF("Split", cost.Regroup, func(args []Cell) []Cell {
		// Each volume splits into 3 voxel blocks.
		return []Cell{
			{V: "block0", Size: args[0].Size / 3},
			{V: "block1", Size: args[0].Size / 3},
			{V: "block2", Size: args[0].Size / 3},
		}
	})
	res, err := Run(eng, `
		T1 = SCAN(Images);
		Blocks = [FROM T1 EMIT PYUDF(Split, img) AS block, subjId, imgId];
		STORE(Blocks, VoxelBlocks);
	`, env)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res.Stored["VoxelBlocks"])
	if len(rows) != 2*3 {
		t.Fatalf("flatmap produced %d rows, want 6", len(rows))
	}
}

func TestRunSequencedQueries(t *testing.T) {
	// Two programs run as two sequential queries, the second consuming
	// the first's stored output — the paper's mask-then-denoise split.
	eng, env := testEngine(t, 2, 4)
	env.DefineUDA("MeanVol", cost.Mean, func(group [][]Cell) Cell {
		var sum float64
		for _, args := range group {
			sum += args[0].V.(float64)
		}
		return Cell{V: sum / float64(len(group)), Size: 1 << 10}
	})
	res1, err := Run(eng, `
		T1 = SCAN(Images);
		B0 = [SELECT * FROM T1 WHERE T1.imgId < 2];
		M = [SELECT B0.subjId, PYUDA(MeanVol, B0.img) AS mask FROM B0];
		STORE(M, Mask2);
	`, env)
	if err != nil {
		t.Fatal(err)
	}
	env.DefineTable("Mask2", Schema{Key: []string{"subjId"}, Cols: []string{"subjId", "mask"}}, res1.Stored["Mask2"])
	env.DefineUDF("Denoise", cost.Denoise, func(args []Cell) []Cell {
		return []Cell{{V: args[0].V.(float64) * 2, Size: args[0].Size}}
	})
	res2, err := Run(eng, `
		T1 = SCAN(Images);
		T2 = SCAN(Mask2);
		J = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask FROM T1, T2 WHERE T1.subjId = T2.subjId];
		D = [FROM J EMIT PYUDF(Denoise, img) AS img, subjId, imgId];
		STORE(D, Denoised);
	`, env, res1.Done)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Rows(res2.Stored["Denoised"])); got != 2*4 {
		t.Fatalf("got %d denoised rows, want 8", got)
	}
	// Virtual time advanced monotonically across the two queries.
	if res2.Done.End < res1.Done.End {
		t.Errorf("second query finished (%v) before the first (%v)", res2.Done.End, res1.Done.End)
	}
}

func TestRunErrors(t *testing.T) {
	eng, env := testEngine(t, 1, 2)
	cases := []struct {
		name, src string
		wantSub   string
	}{
		{"unknown table", `T = SCAN(Nope); STORE(T, X);`, "unknown base table"},
		{"unbound rel", `X = [SELECT * FROM Ghost];`, "unbound relation"},
		{"store unbound", `STORE(Ghost, X);`, "unbound"},
		{"unknown udf", `T = SCAN(Images); D = [FROM T EMIT PYUDF(Nope, img) AS x];`, "unknown UDF"},
		{"unknown uda", `T = SCAN(Images); D = [SELECT T.subjId, PYUDA(Nope, T.img) AS x FROM T];`, "unknown UDA"},
		{"unknown column", `T = SCAN(Images); D = [SELECT T.ghost FROM T];`, "no column"},
		{"unknown alias", `T = SCAN(Images); D = [SELECT Z.img FROM T];`, "unknown alias"},
		{"no join pred", `A = SCAN(Images); B = SCAN(Mask); J = [SELECT A.img FROM A, B];`, "equality join"},
		{"udf in select", `T = SCAN(Images); D = [SELECT PYUDF(F, T.img) FROM T];`, "EMIT"},
		{"emit without call", `T = SCAN(Images); D = [FROM T EMIT subjId];`, "without a PYUDF"},
		{"three tables", `A = SCAN(Images); J = [SELECT A.img FROM A, A AS B, A AS C];`, "1 or 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(eng, tc.src, env)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestJoinRequiresKeyPrefix(t *testing.T) {
	eng, env := testEngine(t, 1, 2)
	// Joining Images to Mask on a non-key-prefix column must be rejected,
	// not silently wrong.
	_, err := Run(eng, `
		A = SCAN(Images);
		B = SCAN(Mask);
		J = [SELECT A.subjId FROM A, B WHERE A.imgId = B.subjId];
	`, env)
	if err == nil || !strings.Contains(err.Error(), "first key column") {
		t.Fatalf("expected key-prefix error, got %v", err)
	}
}

func keysOf[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
