// Package myrial implements a frontend for MyriaL, the
// imperative-declarative hybrid query language of the Myria big-data
// management system. The paper's Myria implementations of both use cases
// are MyriaL programs calling Python UDFs (Figure 7); this package lexes,
// parses, and compiles that language subset onto the internal/myria
// engine's query operators:
//
//	SCAN(R)                              → base-table scan
//	[SELECT … FROM R WHERE pred]         → selection pushed down to the
//	                                       node-local store when R is a
//	                                       base table (Fig 12a)
//	[SELECT … FROM A, B WHERE A.k = B.k] → broadcast join (the mask join)
//	[FROM R EMIT PYUDF(F, cols) AS c, …] → per-tuple Python UDF apply
//	[SELECT k, PYUDA(G, col) FROM R]     → shuffle + grouped Python UDA
//	STORE(R, Name)                       → program output
//
// Programs execute as a single Myria query, exactly as the MyriaL
// coordinator would run them.
package myrial

import (
	"fmt"
	"strings"

	"imagebench/internal/cost"
	"imagebench/internal/myria"
)

// Cell is one attribute value: the decoded Go value plus its paper-scale
// size in bytes (non-zero for BLOB attributes such as serialized NumPy
// arrays; scalar attributes may leave it 0).
type Cell struct {
	V    any
	Size int64
}

// Row is one relational tuple as the frontend sees it: column name →
// cell. Rows travel through the myria engine as the Tuple BLOB value.
type Row map[string]Cell

// Bytes returns the paper-scale size of the row (the sum of its cells).
func (r Row) Bytes() int64 {
	var n int64
	for _, c := range r {
		n += c.Size
	}
	return n
}

// Clone returns a copy of the row sharing cell values.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Schema describes a relation: its column names and the key columns whose
// values (joined with '/') form the engine-level tuple key. Key order
// matters: broadcast joins require the join column to be the first key
// column of the probe side.
type Schema struct {
	Key  []string
	Cols []string
}

func (s Schema) hasCol(name string) bool {
	for _, c := range s.Cols {
		if c == name {
			return true
		}
	}
	return false
}

// KeyOf derives the engine tuple key for a row under this schema.
func (s Schema) KeyOf(r Row) string {
	parts := make([]string, len(s.Key))
	for i, k := range s.Key {
		parts[i] = fmt.Sprint(r[k].V)
	}
	return strings.Join(parts, "/")
}

// TupleOf wraps a row into an engine tuple under this schema.
func (s Schema) TupleOf(r Row) myria.Tuple {
	return myria.Tuple{Key: s.KeyOf(r), Value: r, Size: r.Bytes()}
}

// UDF is a registered Python user-defined function: the calibrated cost
// operation and the real computation over the call's argument cells. Each
// returned cell becomes one output tuple (flatmap semantics; most UDFs
// return exactly one cell).
type UDF struct {
	Op cost.Op
	F  func(args []Cell) []Cell
}

// UDA is a registered Python user-defined aggregate: it folds one group —
// one []Cell of call arguments per input row — into a single cell.
type UDA struct {
	Op cost.Op
	F  func(group [][]Cell) Cell
}

// Env is the binding environment a program compiles against: ingested
// base tables with their schemas, and registered UDFs/UDAs — the
// counterpart of MyriaConnection.create_function in the paper's Figure 7.
type Env struct {
	tables  map[string]*myria.Relation
	schemas map[string]Schema
	udfs    map[string]UDF
	udas    map[string]UDA
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{
		tables:  make(map[string]*myria.Relation),
		schemas: make(map[string]Schema),
		udfs:    make(map[string]UDF),
		udas:    make(map[string]UDA),
	}
}

// DefineTable registers an ingested base relation under name. The
// relation's tuples must carry Row values whose keys match schema.
func (e *Env) DefineTable(name string, schema Schema, rel *myria.Relation) {
	e.tables[name] = rel
	e.schemas[name] = schema
}

// DefineUDF registers a Python UDF for PYUDF(name, …) calls.
func (e *Env) DefineUDF(name string, op cost.Op, f func(args []Cell) []Cell) {
	e.udfs[name] = UDF{Op: op, F: f}
}

// DefineUDA registers a Python UDA for PYUDA(name, …) calls.
func (e *Env) DefineUDA(name string, op cost.Op, f func(group [][]Cell) Cell) {
	e.udas[name] = UDA{Op: op, F: f}
}

// Rows extracts the frontend rows from a relation produced by Run.
func Rows(rel *myria.Relation) []Row {
	var out []Row
	for _, t := range rel.Tuples() {
		if r, ok := t.Value.(Row); ok {
			out = append(out, r)
		}
	}
	return out
}
