package myrial

import (
	"fmt"
	"strconv"
)

// Parse parses a MyriaL program. The supported grammar is the subset the
// paper's programs use (Figure 7 and the pipeline queries):
//
//	program  := stmt+
//	stmt     := IDENT '=' relexpr ';'
//	          | 'STORE' '(' IDENT ',' IDENT ')' ';'
//	relexpr  := 'SCAN' '(' IDENT ')'
//	          | '[' 'SELECT' items 'FROM' refs ('WHERE' conj)? ('GROUP' 'BY' cols)? ']'
//	          | '[' 'FROM' IDENT 'EMIT' items ']'
//	items    := item (',' item)*
//	item     := '*' | colref | call ('AS' IDENT)?
//	call     := ('PYUDF'|'PYUDA') '(' IDENT (',' colref)* ')'
//	refs     := ref (',' ref)*
//	ref      := IDENT ('AS' IDENT)?
//	conj     := cmp ('AND' cmp)*
//	cmp      := operand ('='|'<>'|'<'|'<='|'>'|'>=') operand
//	operand  := colref | NUMBER | STRING
//	colref   := IDENT ('.' IDENT)?
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().Kind != TokEOF {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	if len(prog.Stmts) == 0 {
		return nil, fmt.Errorf("myrial: empty program")
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...any) error {
	return fmt.Errorf("myrial: line %d: %s", t.Line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		return t, p.errf(t, "expected %s, found %s", kind, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) (Token, error) {
	t := p.next()
	if t.Kind != TokKeyword || t.Text != kw {
		return t, p.errf(t, "expected %s, found %s", kw, t)
	}
	return t, nil
}

// atKeyword reports whether the next token is the given keyword, without
// consuming it.
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == "STORE" {
		return p.storeStmt()
	}
	if t.Kind != TokIdent {
		return nil, p.errf(t, "expected assignment or STORE, found %s", t)
	}
	name := p.next()
	if _, err := p.expect(TokEq); err != nil {
		return nil, err
	}
	expr, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &AssignStmt{Line: name.Line, Name: name.Text, Expr: expr}, nil
}

func (p *parser) storeStmt() (Stmt, error) {
	kw, _ := p.expectKeyword("STORE")
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	rel, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	as, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &StoreStmt{Line: kw.Line, Rel: rel.Text, As: as.Text}, nil
}

func (p *parser) relExpr() (RelExpr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokKeyword && t.Text == "SCAN":
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		tbl, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &ScanExpr{Line: t.Line, Table: tbl.Text}, nil
	case t.Kind == TokLBracket:
		return p.bracketExpr()
	}
	return nil, p.errf(t, "expected SCAN or '[', found %s", t)
}

func (p *parser) bracketExpr() (RelExpr, error) {
	open, _ := p.expect(TokLBracket)
	switch {
	case p.atKeyword("SELECT"):
		return p.selectExpr(open.Line)
	case p.atKeyword("FROM"):
		return p.emitExpr(open.Line)
	}
	return nil, p.errf(p.peek(), "expected SELECT or FROM after '[', found %s", p.peek())
}

func (p *parser) selectExpr(line int) (RelExpr, error) {
	p.next() // SELECT
	items, err := p.items()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	refs, err := p.tableRefs()
	if err != nil {
		return nil, err
	}
	e := &SelectExpr{Line: line, Items: items, From: refs}
	if p.atKeyword("WHERE") {
		p.next()
		e.Where, err = p.conjuncts()
		if err != nil {
			return nil, err
		}
	}
	if p.atKeyword("GROUP") {
		p.next()
		if _, err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			e.GroupBy = append(e.GroupBy, c)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) emitExpr(line int) (RelExpr, error) {
	p.next() // FROM
	from, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("EMIT"); err != nil {
		return nil, err
	}
	items, err := p.items()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return &EmitExpr{Line: line, From: from.Text, Items: items}, nil
}

func (p *parser) items() ([]Item, error) {
	var out []Item
	for {
		it, err := p.item()
		if err != nil {
			return nil, err
		}
		out = append(out, it)
		if p.peek().Kind != TokComma {
			return out, nil
		}
		p.next()
	}
}

func (p *parser) item() (Item, error) {
	t := p.peek()
	switch {
	case t.Kind == TokStar:
		p.next()
		return Item{Star: true}, nil
	case t.Kind == TokKeyword && (t.Text == "PYUDF" || t.Text == "PYUDA"):
		call, err := p.call()
		if err != nil {
			return Item{}, err
		}
		it := Item{Call: call}
		if p.atKeyword("AS") {
			p.next()
			alias, err := p.expect(TokIdent)
			if err != nil {
				return Item{}, err
			}
			it.Alias = alias.Text
		}
		return it, nil
	case t.Kind == TokIdent:
		c, err := p.colRef()
		if err != nil {
			return Item{}, err
		}
		return Item{Col: &c}, nil
	}
	return Item{}, p.errf(t, "expected projection item, found %s", t)
}

func (p *parser) call() (*Call, error) {
	kw := p.next() // PYUDF | PYUDA
	c := &Call{Aggregate: kw.Text == "PYUDA"}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	c.Func = fn.Text
	for p.peek().Kind == TokComma {
		p.next()
		a, err := p.colRef()
		if err != nil {
			return nil, err
		}
		c.Args = append(c.Args, a)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) tableRefs() ([]TableRef, error) {
	var out []TableRef
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name.Text, Alias: name.Text}
		if p.atKeyword("AS") {
			p.next()
			alias, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			ref.Alias = alias.Text
		}
		out = append(out, ref)
		if p.peek().Kind != TokComma {
			return out, nil
		}
		p.next()
	}
}

func (p *parser) conjuncts() ([]Comparison, error) {
	var out []Comparison
	for {
		c, err := p.comparison()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if !p.atKeyword("AND") {
			return out, nil
		}
		p.next()
	}
}

func (p *parser) comparison() (Comparison, error) {
	left, err := p.operand()
	if err != nil {
		return Comparison{}, err
	}
	op := p.next()
	switch op.Kind {
	case TokEq, TokNeq, TokLt, TokLeq, TokGt, TokGeq:
	default:
		return Comparison{}, p.errf(op, "expected comparison operator, found %s", op)
	}
	right, err := p.operand()
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Left: left, Op: op.Kind, Right: right}, nil
}

func (p *parser) operand() (Operand, error) {
	t := p.peek()
	switch t.Kind {
	case TokIdent:
		c, err := p.colRef()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Col: &c}, nil
	case TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return Operand{}, p.errf(t, "bad number %q", t.Text)
		}
		return Operand{Num: &v}, nil
	case TokString:
		p.next()
		s := t.Text
		return Operand{Str: &s}, nil
	}
	return Operand{}, p.errf(t, "expected column, number, or string, found %s", t)
}

func (p *parser) colRef() (ColRef, error) {
	first, err := p.expect(TokIdent)
	if err != nil {
		return ColRef{}, err
	}
	if p.peek().Kind != TokDot {
		return ColRef{Col: first.Text}, nil
	}
	p.next()
	col, err := p.expect(TokIdent)
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Table: first.Text, Col: col.Text}, nil
}
