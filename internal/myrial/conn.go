package myrial

import (
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/myria"
)

// Connection mirrors the client API of the paper's Figure 7 — the
// MyriaConnection / MyriaQuery.submit surface — on top of the frontend:
//
//	conn = MyriaConnection(url="...")      → Connect(eng)
//	conn.create_function("Denoise", f)     → conn.CreateFunction(...)
//	MyriaQuery.submit("""T1 = SCAN…""")    → conn.Submit(...)
//
// Submitted programs run sequentially: each query waits for the previous
// one, as the coordinator would schedule them.
type Connection struct {
	eng  *myria.Engine
	env  *Env
	last *cluster.Handle
}

// Connect opens a connection to a deployed Myria engine.
func Connect(eng *myria.Engine) *Connection {
	return &Connection{eng: eng, env: NewEnv()}
}

// Env exposes the connection's binding environment (for DefineTable of
// pre-ingested relations).
func (c *Connection) Env() *Env { return c.env }

// CreateFunction registers a Python UDF under name, the counterpart of
// conn.create_function.
func (c *Connection) CreateFunction(name string, op cost.Op, f func(args []Cell) []Cell) {
	c.env.DefineUDF(name, op, f)
}

// CreateAggregate registers a Python UDA under name.
func (c *Connection) CreateAggregate(name string, op cost.Op, f func(group [][]Cell) Cell) {
	c.env.DefineUDA(name, op, f)
}

// RegisterTable binds an ingested base relation into the catalog the
// submitted programs see.
func (c *Connection) RegisterTable(name string, schema Schema, rel *myria.Relation) {
	c.env.DefineTable(name, schema, rel)
}

// Submit parses, compiles, and executes a MyriaL program, sequenced
// after every previously submitted program. Stored outputs are
// automatically registered as base tables for later programs, keyed by
// their output schema (the engine-side STORE semantics).
func (c *Connection) Submit(src string, schemas map[string]Schema) (*Result, error) {
	var after []*cluster.Handle
	if c.last != nil {
		after = append(after, c.last)
	}
	res, err := Run(c.eng, src, c.env, after...)
	if err != nil {
		return nil, err
	}
	c.last = res.Done
	for name, rel := range res.Stored {
		schema, ok := schemas[name]
		if !ok {
			continue // outputs without a declared schema stay unregistered
		}
		c.env.DefineTable(name, schema, rel)
	}
	return res, nil
}
