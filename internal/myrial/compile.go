package myrial

import (
	"fmt"
	"strings"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/myria"
)

// Result is the outcome of running a program: the relations named by
// STORE statements, every bound intermediate (for inspection), and the
// completion handle of the single Myria query the program executed as.
type Result struct {
	Stored map[string]*myria.Relation
	Bound  map[string]*myria.Relation
	Done   *cluster.Handle
}

// Run parses, compiles, and executes a MyriaL program against eng using
// the bindings in env. The whole program runs as one Myria query (the
// paper's programs submit one query per MyriaQuery.submit call).
func Run(eng *myria.Engine, src string, env *Env, after ...*cluster.Handle) (*Result, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Exec(eng, prog, env, after...)
}

// Exec executes an already-parsed program.
func Exec(eng *myria.Engine, prog *Program, env *Env, after ...*cluster.Handle) (*Result, error) {
	c := &compiler{
		eng:      eng,
		env:      env,
		q:        eng.NewQuery(after...),
		bindings: make(map[string]*binding),
		res:      &Result{Stored: make(map[string]*myria.Relation), Bound: make(map[string]*myria.Relation)},
	}
	for _, st := range prog.Stmts {
		if err := c.stmt(st); err != nil {
			return nil, err
		}
	}
	done, err := c.q.Finish()
	if err != nil {
		return nil, err
	}
	c.res.Done = done
	return c.res, nil
}

// binding is a name bound by an assignment: either a still-unscanned base
// table (scan deferred so WHERE can push down) or a pipeline relation.
type binding struct {
	name   string
	schema Schema
	base   *myria.Relation // non-nil until first scanned
	rel    *myria.Relation // non-nil once in the pipeline
}

type compiler struct {
	eng      *myria.Engine
	env      *Env
	q        *myria.Query
	bindings map[string]*binding
	res      *Result
}

func (c *compiler) stmt(st Stmt) error {
	switch s := st.(type) {
	case *AssignStmt:
		b, err := c.relExpr(s)
		if err != nil {
			return err
		}
		b.name = s.Name
		c.bindings[s.Name] = b
		if b.rel != nil {
			c.res.Bound[s.Name] = b.rel
		}
		return nil
	case *StoreStmt:
		b, ok := c.bindings[s.Rel]
		if !ok {
			return fmt.Errorf("myrial: line %d: STORE of unbound relation %q", s.Line, s.Rel)
		}
		rel := c.materialize(b)
		c.res.Stored[s.As] = rel
		return nil
	}
	return fmt.Errorf("myrial: unknown statement %T", st)
}

// materialize forces a deferred base scan into the pipeline.
func (c *compiler) materialize(b *binding) *myria.Relation {
	if b.rel == nil {
		b.rel = c.q.Scan(b.base)
		c.res.Bound[b.name] = b.rel
	}
	return b.rel
}

func (c *compiler) relExpr(s *AssignStmt) (*binding, error) {
	switch e := s.Expr.(type) {
	case *ScanExpr:
		return c.scan(e)
	case *SelectExpr:
		return c.selectExpr(e)
	case *EmitExpr:
		return c.emit(e)
	}
	return nil, fmt.Errorf("myrial: unknown expression %T", s.Expr)
}

func (c *compiler) scan(e *ScanExpr) (*binding, error) {
	rel, ok := c.env.tables[e.Table]
	if !ok {
		return nil, fmt.Errorf("myrial: line %d: unknown base table %q (DefineTable it first)", e.Line, e.Table)
	}
	// The scan is deferred: a following single-table WHERE compiles to a
	// pushed-down ScanWhere instead of scan + filter.
	return &binding{base: rel, schema: c.env.schemas[e.Table]}, nil
}

// lookup resolves a table reference to its binding.
func (c *compiler) lookup(line int, name string) (*binding, error) {
	b, ok := c.bindings[name]
	if !ok {
		return nil, fmt.Errorf("myrial: line %d: unbound relation %q", line, name)
	}
	return b, nil
}

func (c *compiler) selectExpr(e *SelectExpr) (*binding, error) {
	switch len(e.From) {
	case 1:
		return c.selectOne(e)
	case 2:
		return c.selectJoin(e)
	}
	return nil, fmt.Errorf("myrial: line %d: FROM supports 1 or 2 relations, got %d", e.Line, len(e.From))
}

// aliasSchemas validates item/predicate alias qualifiers against the FROM
// clause and returns alias → schema.
func aliasSchemas(e *SelectExpr, bs []*binding) map[string]Schema {
	out := make(map[string]Schema, len(e.From))
	for i, ref := range e.From {
		out[ref.Alias] = bs[i].schema
	}
	return out
}

// selectOne compiles a single-table SELECT: projection, optional
// predicate, optional implicit/explicit group-by when UDA items appear.
func (c *compiler) selectOne(e *SelectExpr) (*binding, error) {
	in, err := c.lookup(e.Line, e.From[0].Name)
	if err != nil {
		return nil, err
	}
	scopes := aliasSchemas(e, []*binding{in})
	if hasAggregate(e.Items) {
		return c.groupBy(e, in, scopes)
	}
	proj, outSchema, err := projection(e.Line, e.Items, scopes, in.schema)
	if err != nil {
		return nil, err
	}
	pred, err := predicate(e.Line, e.Where, scopes)
	if err != nil {
		return nil, err
	}
	out := &binding{schema: outSchema}
	if in.rel == nil && pred != nil {
		// Selection over a base table: push the predicate down into the
		// node-local store (the paper's Fig 12a fast path).
		out.rel = c.q.ScanWhere(in.base, func(t myria.Tuple) bool {
			return pred(t.Value.(Row))
		})
		out.rel = c.applyProjection(out.rel, proj, outSchema)
		return out, nil
	}
	rel := c.materialize(in)
	udf := myria.PyUDF{Name: "select", Op: cost.Filter, F: func(t myria.Tuple) []myria.Tuple {
		row := t.Value.(Row)
		if pred != nil && !pred(row) {
			return nil
		}
		nr := proj(row)
		return []myria.Tuple{{Key: t.Key, Value: nr, Size: nr.Bytes()}}
	}}
	out.rel = c.q.Apply(rel, udf)
	return out, nil
}

// applyProjection narrows scanned rows to the projected columns. A `*`
// projection is the identity and costs nothing extra.
func (c *compiler) applyProjection(rel *myria.Relation, proj func(Row) Row, schema Schema) *myria.Relation {
	return c.q.Apply(rel, myria.PyUDF{Name: "project", Op: cost.Filter, F: func(t myria.Tuple) []myria.Tuple {
		nr := proj(t.Value.(Row))
		return []myria.Tuple{{Key: t.Key, Value: nr, Size: nr.Bytes()}}
	}})
}

// selectJoin compiles the two-table broadcast-join form of Figure 7:
// exactly one equality conjunct must relate a column of each side; the
// second relation (the mask in the paper) is broadcast.
func (c *compiler) selectJoin(e *SelectExpr) (*binding, error) {
	left, err := c.lookup(e.Line, e.From[0].Name)
	if err != nil {
		return nil, err
	}
	right, err := c.lookup(e.Line, e.From[1].Name)
	if err != nil {
		return nil, err
	}
	scopes := aliasSchemas(e, []*binding{left, right})
	lAlias, rAlias := e.From[0].Alias, e.From[1].Alias

	var joinL, joinR string
	var rest []Comparison
	for _, cmp := range e.Where {
		lc, rc := cmp.Left.Col, cmp.Right.Col
		if cmp.Op == TokEq && lc != nil && rc != nil && lc.Table != rc.Table &&
			lc.Table != "" && rc.Table != "" && joinL == "" {
			a, b := *lc, *rc
			if a.Table == rAlias {
				a, b = b, a
			}
			if a.Table != lAlias || b.Table != rAlias {
				return nil, fmt.Errorf("myrial: line %d: join predicate %s references unknown aliases", e.Line, cmp)
			}
			joinL, joinR = a.Col, b.Col
			continue
		}
		rest = append(rest, cmp)
	}
	if joinL == "" {
		return nil, fmt.Errorf("myrial: line %d: two-table SELECT requires an equality join predicate", e.Line)
	}
	if !left.schema.hasCol(joinL) {
		return nil, fmt.Errorf("myrial: line %d: join column %q not in %s", e.Line, joinL, lAlias)
	}
	if !right.schema.hasCol(joinR) {
		return nil, fmt.Errorf("myrial: line %d: join column %q not in %s", e.Line, joinR, rAlias)
	}
	// Broadcast-join correctness depends on the probe side's tuple keys
	// beginning with the join attribute (the build side is re-keyed by it
	// below). Enforce rather than silently dropping matches.
	if len(left.schema.Key) == 0 || left.schema.Key[0] != joinL {
		return nil, fmt.Errorf("myrial: line %d: broadcast join requires %q to be the first key column of %s (key is %v)",
			e.Line, joinL, lAlias, left.schema.Key)
	}

	proj, outSchema, err := projection(e.Line, e.Items, scopes, mergeSchemas(left.schema, right.schema))
	if err != nil {
		return nil, err
	}
	restPred, err := predicate(e.Line, rest, scopes)
	if err != nil {
		return nil, err
	}

	lrel := c.materialize(left)
	rrel := c.materialize(right)
	// Re-key the build side by the join attribute so the engine's
	// prefix-match broadcast join finds it.
	var rekeyed []myria.Tuple
	for _, t := range rrel.Tuples() {
		row := t.Value.(Row)
		rekeyed = append(rekeyed, myria.Tuple{Key: fmt.Sprint(row[joinR].V), Value: row, Size: row.Bytes()})
	}
	build := c.eng.RelationFromTuples(c.q, "join-build", rekeyed)

	joined := c.q.BroadcastJoin("join", lrel, build, func(l myria.Tuple, rs []myria.Tuple) []myria.Tuple {
		lrow := l.Value.(Row)
		var out []myria.Tuple
		for _, rt := range rs {
			rrow := rt.Value.(Row)
			if fmt.Sprint(lrow[joinL].V) != fmt.Sprint(rrow[joinR].V) {
				continue
			}
			merged := lrow.Clone()
			for k, v := range rrow {
				if _, exists := merged[k]; !exists {
					merged[k] = v
				}
			}
			if restPred != nil && !restPred(merged) {
				continue
			}
			nr := proj(merged)
			out = append(out, myria.Tuple{Key: l.Key, Value: nr, Size: nr.Bytes()})
		}
		return out
	})
	return &binding{schema: outSchema, rel: joined}, nil
}

func mergeSchemas(l, r Schema) Schema {
	out := Schema{Key: append([]string(nil), l.Key...), Cols: append([]string(nil), l.Cols...)}
	for _, c := range r.Cols {
		if !out.hasCol(c) {
			out.Cols = append(out.Cols, c)
		}
	}
	return out
}

func hasAggregate(items []Item) bool {
	for _, it := range items {
		if it.Call != nil && it.Call.Aggregate {
			return true
		}
	}
	return false
}

// groupBy compiles an aggregate SELECT: shuffle by the grouping columns,
// then run each PYUDA over its groups. Non-aggregate column items form
// the implicit grouping key when no GROUP BY clause is present.
func (c *compiler) groupBy(e *SelectExpr, in *binding, scopes map[string]Schema) (*binding, error) {
	var groupCols []string
	if len(e.GroupBy) > 0 {
		for _, g := range e.GroupBy {
			if err := checkCol(e.Line, g, scopes, in.schema); err != nil {
				return nil, err
			}
			groupCols = append(groupCols, g.Col)
		}
	} else {
		for _, it := range e.Items {
			if it.Col != nil {
				if err := checkCol(e.Line, *it.Col, scopes, in.schema); err != nil {
					return nil, err
				}
				groupCols = append(groupCols, it.Col.Col)
			}
		}
	}
	if len(groupCols) == 0 {
		return nil, fmt.Errorf("myrial: line %d: aggregate SELECT needs grouping columns", e.Line)
	}

	type aggItem struct {
		name string
		uda  UDA
		args []string
	}
	var aggs []aggItem
	outSchema := Schema{Key: groupCols, Cols: append([]string(nil), groupCols...)}
	for _, it := range e.Items {
		if it.Call == nil {
			continue
		}
		if !it.Call.Aggregate {
			return nil, fmt.Errorf("myrial: line %d: PYUDF in aggregate SELECT (use an EMIT statement first)", e.Line)
		}
		uda, ok := c.env.udas[it.Call.Func]
		if !ok {
			return nil, fmt.Errorf("myrial: line %d: unknown UDA %q (DefineUDA it first)", e.Line, it.Call.Func)
		}
		var args []string
		for _, a := range it.Call.Args {
			if err := checkCol(e.Line, a, scopes, in.schema); err != nil {
				return nil, err
			}
			args = append(args, a.Col)
		}
		name := it.Alias
		if name == "" {
			name = strings.ToLower(it.Call.Func)
		}
		aggs = append(aggs, aggItem{name: name, uda: uda, args: args})
		outSchema.Cols = append(outSchema.Cols, name)
	}

	rel := c.materialize(in)
	groupKey := func(t myria.Tuple) string {
		row := t.Value.(Row)
		parts := make([]string, len(groupCols))
		for i, g := range groupCols {
			parts[i] = fmt.Sprint(row[g].V)
		}
		return strings.Join(parts, "/")
	}
	op := cost.Mean
	if len(aggs) > 0 {
		op = aggs[0].uda.Op
	}
	out := c.q.GroupByApply(rel, groupKey, myria.PyUDA{Name: "groupby", Op: op, F: func(key string, group []myria.Tuple) []myria.Tuple {
		nr := make(Row)
		first := group[0].Value.(Row)
		for _, g := range groupCols {
			nr[g] = first[g]
		}
		for _, ag := range aggs {
			calls := make([][]Cell, len(group))
			for i, t := range group {
				row := t.Value.(Row)
				args := make([]Cell, len(ag.args))
				for j, a := range ag.args {
					args[j] = row[a]
				}
				calls[i] = args
			}
			nr[ag.name] = ag.uda.F(calls)
		}
		return []myria.Tuple{{Key: key, Value: nr, Size: nr.Bytes()}}
	}})
	return &binding{schema: outSchema, rel: out}, nil
}

// emit compiles `[FROM R EMIT items]`: one Apply running the PYUDF calls
// per tuple, carrying the plain column items through.
func (c *compiler) emit(e *EmitExpr) (*binding, error) {
	in, err := c.lookup(e.Line, e.From)
	if err != nil {
		return nil, err
	}
	scope := map[string]Schema{e.From: in.schema}

	type udfItem struct {
		name string
		udf  UDF
		args []string
	}
	var calls []udfItem
	var carry []string
	outSchema := Schema{Key: in.schema.Key}
	for _, it := range e.Items {
		switch {
		case it.Star:
			carry = append(carry, in.schema.Cols...)
			outSchema.Cols = append(outSchema.Cols, in.schema.Cols...)
		case it.Col != nil:
			if err := checkCol(e.Line, *it.Col, scope, in.schema); err != nil {
				return nil, err
			}
			carry = append(carry, it.Col.Col)
			outSchema.Cols = append(outSchema.Cols, it.Col.Col)
		case it.Call != nil:
			if it.Call.Aggregate {
				return nil, fmt.Errorf("myrial: line %d: PYUDA in EMIT (aggregates need a SELECT)", e.Line)
			}
			udf, ok := c.env.udfs[it.Call.Func]
			if !ok {
				return nil, fmt.Errorf("myrial: line %d: unknown UDF %q (DefineUDF it first)", e.Line, it.Call.Func)
			}
			var args []string
			for _, a := range it.Call.Args {
				if err := checkCol(e.Line, a, scope, in.schema); err != nil {
					return nil, err
				}
				args = append(args, a.Col)
			}
			name := it.Alias
			if name == "" {
				name = strings.ToLower(it.Call.Func)
			}
			calls = append(calls, udfItem{name: name, udf: udf, args: args})
			outSchema.Cols = append(outSchema.Cols, name)
		}
	}
	if len(calls) == 0 {
		return nil, fmt.Errorf("myrial: line %d: EMIT without a PYUDF call (use SELECT for projections)", e.Line)
	}

	// Key columns must survive into the output for downstream grouping.
	for _, k := range in.schema.Key {
		if !outSchema.hasCol(k) {
			outSchema.Key = nil
			break
		}
	}

	op := calls[0].udf.Op
	rel := c.materialize(in)
	out := c.q.Apply(rel, myria.PyUDF{Name: "emit:" + calls[0].name, Op: op, F: func(t myria.Tuple) []myria.Tuple {
		row := t.Value.(Row)
		base := make(Row, len(carry))
		for _, col := range carry {
			base[col] = row[col]
		}
		// The first call may flatmap (k cells → k rows); additional calls
		// must be scalar and are evaluated per output row.
		first := calls[0]
		args := make([]Cell, len(first.args))
		for j, a := range first.args {
			args[j] = row[a]
		}
		var outs []myria.Tuple
		for _, cell := range first.udf.F(args) {
			nr := base.Clone()
			nr[first.name] = cell
			for _, extra := range calls[1:] {
				eargs := make([]Cell, len(extra.args))
				for j, a := range extra.args {
					eargs[j] = row[a]
				}
				cells := extra.udf.F(eargs)
				if len(cells) != 1 {
					continue
				}
				nr[extra.name] = cells[0]
			}
			outs = append(outs, myria.Tuple{Key: t.Key, Value: nr, Size: nr.Bytes()})
		}
		return outs
	}})
	return &binding{schema: outSchema, rel: out}, nil
}

// checkCol validates a column reference against the scope.
func checkCol(line int, c ColRef, scopes map[string]Schema, def Schema) error {
	if c.Table != "" {
		s, ok := scopes[c.Table]
		if !ok {
			return fmt.Errorf("myrial: line %d: unknown alias %q in %s", line, c.Table, c)
		}
		if !s.hasCol(c.Col) {
			return fmt.Errorf("myrial: line %d: no column %q in %s", line, c.Col, c.Table)
		}
		return nil
	}
	if !def.hasCol(c.Col) {
		return fmt.Errorf("myrial: line %d: no column %q", line, c.Col)
	}
	return nil
}

// projection compiles the item list into a row transform and the output
// schema. Key columns of the input are preserved when projected.
func projection(line int, items []Item, scopes map[string]Schema, in Schema) (func(Row) Row, Schema, error) {
	star := false
	var cols []string
	for _, it := range items {
		switch {
		case it.Star:
			star = true
		case it.Col != nil:
			if err := checkCol(line, *it.Col, scopes, in); err != nil {
				return nil, Schema{}, err
			}
			cols = append(cols, it.Col.Col)
		case it.Call != nil:
			return nil, Schema{}, fmt.Errorf("myrial: line %d: PYUDF in SELECT items (use an EMIT statement)", line)
		}
	}
	if star {
		return func(r Row) Row { return r }, in, nil
	}
	out := Schema{Cols: cols}
	for _, k := range in.Key {
		if out.hasCol(k) {
			out.Key = append(out.Key, k)
		}
	}
	return func(r Row) Row {
		nr := make(Row, len(cols))
		for _, c := range cols {
			if cell, ok := r[c]; ok {
				nr[c] = cell
			}
		}
		return nr
	}, out, nil
}

// predicate compiles WHERE conjuncts into a row predicate (nil when the
// clause is empty).
func predicate(line int, cmps []Comparison, scopes map[string]Schema) (func(Row) bool, error) {
	if len(cmps) == 0 {
		return nil, nil
	}
	// Validate column operands against their scopes.
	var def Schema
	for _, s := range scopes {
		def = mergeSchemas(def, s)
	}
	for _, cmp := range cmps {
		for _, o := range []Operand{cmp.Left, cmp.Right} {
			if o.Col != nil {
				if err := checkCol(line, *o.Col, scopes, def); err != nil {
					return nil, err
				}
			}
		}
	}
	conj := append([]Comparison(nil), cmps...)
	return func(r Row) bool {
		for _, cmp := range conj {
			if !evalCmp(cmp, r) {
				return false
			}
		}
		return true
	}, nil
}

func evalCmp(c Comparison, r Row) bool {
	l, lok := operandValue(c.Left, r)
	rv, rok := operandValue(c.Right, r)
	if !lok || !rok {
		return false
	}
	if lf, lisnum := toFloat(l); lisnum {
		if rf, risnum := toFloat(rv); risnum {
			return cmpOrder(compareFloat(lf, rf), c.Op)
		}
	}
	ls, rs := fmt.Sprint(l), fmt.Sprint(rv)
	return cmpOrder(strings.Compare(ls, rs), c.Op)
}

func operandValue(o Operand, r Row) (any, bool) {
	switch {
	case o.Col != nil:
		c, ok := r[o.Col.Col]
		return c.V, ok
	case o.Num != nil:
		return *o.Num, true
	case o.Str != nil:
		return *o.Str, true
	}
	return nil, false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpOrder(ord int, op TokenKind) bool {
	switch op {
	case TokEq:
		return ord == 0
	case TokNeq:
		return ord != 0
	case TokLt:
		return ord < 0
	case TokLeq:
		return ord <= 0
	case TokGt:
		return ord > 0
	case TokGeq:
		return ord >= 0
	}
	return false
}
