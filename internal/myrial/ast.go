package myrial

import (
	"fmt"
	"strings"
)

// Program is a parsed MyriaL program: a sequence of statements executed
// as one Myria query (assignments build the operator graph; STORE marks
// which relations the program outputs).
type Program struct {
	Stmts []Stmt
}

func (p *Program) String() string {
	var b strings.Builder
	for _, s := range p.Stmts {
		fmt.Fprintf(&b, "%s;\n", s)
	}
	return b.String()
}

// Stmt is one MyriaL statement.
type Stmt interface {
	fmt.Stringer
	stmt()
}

// AssignStmt binds a relational expression to a name: `T1 = SCAN(Images)`.
type AssignStmt struct {
	Line int
	Name string
	Expr RelExpr
}

func (s *AssignStmt) stmt()          {}
func (s *AssignStmt) String() string { return fmt.Sprintf("%s = %s", s.Name, s.Expr) }

// StoreStmt marks a bound relation as a program output:
// `STORE(Denoised, DenoisedImages)`.
type StoreStmt struct {
	Line int
	Rel  string // bound relation to store
	As   string // output name
}

func (s *StoreStmt) stmt()          {}
func (s *StoreStmt) String() string { return fmt.Sprintf("STORE(%s, %s)", s.Rel, s.As) }

// RelExpr is a relational expression appearing on the right-hand side of
// an assignment.
type RelExpr interface {
	fmt.Stringer
	relExpr()
}

// ScanExpr reads an ingested base relation: `SCAN(Images)`.
type ScanExpr struct {
	Line  int
	Table string
}

func (e *ScanExpr) relExpr()       {}
func (e *ScanExpr) String() string { return fmt.Sprintf("SCAN(%s)", e.Table) }

// SelectExpr is the bracketed select form:
// `[SELECT items FROM refs WHERE conjuncts]`. An empty Where means no
// predicate. If any item is a UDA call the statement is an implicit
// group-by over the plain column items (MyriaL's aggregate shorthand),
// or over the explicit GROUP BY columns when present.
type SelectExpr struct {
	Line    int
	Items   []Item
	From    []TableRef
	Where   []Comparison
	GroupBy []ColRef
}

func (e *SelectExpr) relExpr() {}
func (e *SelectExpr) String() string {
	var b strings.Builder
	b.WriteString("[SELECT ")
	for i, it := range e.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, t := range e.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(e.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range e.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	if len(e.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range e.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString("]")
	return b.String()
}

// EmitExpr is the bracketed emit form: `[FROM rel EMIT items]` — a
// per-tuple transformation (typically a PYUDF call plus carried columns).
type EmitExpr struct {
	Line  int
	From  string
	Items []Item
}

func (e *EmitExpr) relExpr() {}
func (e *EmitExpr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[FROM %s EMIT ", e.From)
	for i, it := range e.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString("]")
	return b.String()
}

// TableRef names a bound relation, optionally under an alias
// (`Images AS T1`; a bare name aliases itself).
type TableRef struct {
	Name  string
	Alias string
}

func (t TableRef) String() string {
	if t.Alias != t.Name {
		return fmt.Sprintf("%s AS %s", t.Name, t.Alias)
	}
	return t.Name
}

// Item is one projection item: a column reference, a `*`, or a
// PYUDF/PYUDA call with an optional alias.
type Item struct {
	Star  bool
	Col   *ColRef
	Call  *Call
	Alias string // output column name for calls (AS alias)
}

func (it Item) String() string {
	switch {
	case it.Star:
		return "*"
	case it.Col != nil:
		return it.Col.String()
	case it.Call != nil:
		s := it.Call.String()
		if it.Alias != "" {
			s += " AS " + it.Alias
		}
		return s
	}
	return "?"
}

// Call is a PYUDF or PYUDA invocation: the registered function name and
// its column arguments.
type Call struct {
	Aggregate bool // true for PYUDA
	Func      string
	Args      []ColRef
}

func (c *Call) String() string {
	kw := "PYUDF"
	if c.Aggregate {
		kw = "PYUDA"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s", kw, c.Func)
	for _, a := range c.Args {
		fmt.Fprintf(&b, ", %s", a)
	}
	b.WriteString(")")
	return b.String()
}

// ColRef is a possibly alias-qualified column reference (`T1.img` or
// `img`).
type ColRef struct {
	Table string // alias; empty when unqualified
	Col   string
}

func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Col
	}
	return c.Col
}

// Comparison is one WHERE conjunct: `left op right` where operands are
// column references or literals and op ∈ {=, <>, <, <=, >, >=}.
type Comparison struct {
	Left  Operand
	Op    TokenKind
	Right Operand
}

func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, opText(c.Op), c.Right)
}

func opText(k TokenKind) string {
	switch k {
	case TokEq:
		return "="
	case TokNeq:
		return "<>"
	case TokLt:
		return "<"
	case TokLeq:
		return "<="
	case TokGt:
		return ">"
	case TokGeq:
		return ">="
	}
	return "?"
}

// Operand is a comparison operand: exactly one field is set.
type Operand struct {
	Col *ColRef
	Num *float64
	Str *string
}

func (o Operand) String() string {
	switch {
	case o.Col != nil:
		return o.Col.String()
	case o.Num != nil:
		return fmt.Sprintf("%g", *o.Num)
	case o.Str != nil:
		return fmt.Sprintf("%q", *o.Str)
	}
	return "?"
}
