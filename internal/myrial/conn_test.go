package myrial

import (
	"testing"

	"imagebench/internal/cost"
)

// TestConnectionTwoQuerySequence mirrors the paper's client flow:
// register UDFs, submit the mask query, submit the denoise query that
// consumes the stored mask.
func TestConnectionTwoQuerySequence(t *testing.T) {
	const nSubj, nVols = 2, 4
	eng, env := testEngine(t, nSubj, nVols)
	conn := Connect(eng)
	// Carry the pre-ingested tables over.
	conn.RegisterTable("Images", env.schemas["Images"], env.tables["Images"])

	conn.CreateAggregate("MeanVol", cost.Mean, func(group [][]Cell) Cell {
		var sum float64
		for _, args := range group {
			sum += args[0].V.(float64)
		}
		return Cell{V: sum / float64(len(group)), Size: 1 << 10}
	})
	conn.CreateFunction("Denoise", cost.Denoise, func(args []Cell) []Cell {
		return []Cell{{V: args[0].V.(float64) + args[1].V.(float64), Size: args[0].Size}}
	})

	maskSchema := Schema{Key: []string{"subjId"}, Cols: []string{"subjId", "mask"}}
	res1, err := conn.Submit(`
		T1 = SCAN(Images);
		B0 = [SELECT * FROM T1 WHERE T1.imgId < 2];
		M  = [SELECT B0.subjId, PYUDA(MeanVol, B0.img) AS mask FROM B0];
		STORE(M, Mask);
	`, map[string]Schema{"Mask": maskSchema})
	if err != nil {
		t.Fatal(err)
	}
	if len(Rows(res1.Stored["Mask"])) != nSubj {
		t.Fatalf("mask query produced %d rows, want %d", len(Rows(res1.Stored["Mask"])), nSubj)
	}

	res2, err := conn.Submit(`
		T1 = SCAN(Images);
		T2 = SCAN(Mask);
		J  = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask FROM T1, T2 WHERE T1.subjId = T2.subjId];
		D  = [FROM J EMIT PYUDF(Denoise, img, mask) AS img, subjId, imgId];
		STORE(D, Denoised);
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res2.Stored["Denoised"])
	if len(rows) != nSubj*nVols {
		t.Fatalf("denoise query produced %d rows, want %d", len(rows), nSubj*nVols)
	}
	// b0 mean of volumes {0,1} is 0.5; denoised = imgId + 0.5.
	for _, r := range rows {
		want := float64(r["imgId"].V.(int)) + 0.5
		if got := r["img"].V.(float64); got != want {
			t.Errorf("subj %v vol %v: %v, want %v", r["subjId"].V, r["imgId"].V, got, want)
		}
	}
	// Queries sequenced on the virtual clock.
	if res2.Done.End <= res1.Done.End {
		t.Error("second query did not run after the first")
	}
}

func TestConnectionSubmitError(t *testing.T) {
	eng, _ := testEngine(t, 1, 2)
	conn := Connect(eng)
	if _, err := conn.Submit(`X = SCAN(Ghost);`, nil); err == nil {
		t.Fatal("unknown table should error")
	}
}
