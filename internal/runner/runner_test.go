package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/results"
)

// The tests register synthetic experiments (IDs prefixed "zz-test-")
// so they stay fast and can count executions exactly. Registration is
// process-global but package tests run in their own process, so this
// does not disturb core's registry-completeness test.

var (
	fakeRuns  atomic.Int64 // executions of zz-test-ok
	slowRuns  atomic.Int64
	registerO sync.Once

	slowGateMu sync.Mutex
	slowGate   chan struct{} // nil = zz-test-slow does not block
)

// setSlowGate installs the channel zz-test-slow blocks on; nil disables
// blocking. Each test owns its own gate so tests stay independent.
func setSlowGate(g chan struct{}) {
	slowGateMu.Lock()
	slowGate = g
	slowGateMu.Unlock()
}

func slowWait() {
	slowGateMu.Lock()
	g := slowGate
	slowGateMu.Unlock()
	if g != nil {
		<-g
	}
}

func registerFakes() {
	registerO.Do(func() {
		core.Register(&core.Experiment{
			ID: "zz-test-ok", Title: "fake ok", Paper: "n/a",
			Run: func(ctx context.Context, p core.Profile) (*core.Table, error) {
				fakeRuns.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the dedup race window
				t := core.NewTable("fake", "virtual s", []string{"r"}, []string{"c"})
				t.Set("r", "c", 42)
				return t, nil
			},
			Check: func(*core.Table) error { return nil },
		})
		core.Register(&core.Experiment{
			ID: "zz-test-fail", Title: "fake fail", Paper: "n/a",
			Run: func(ctx context.Context, p core.Profile) (*core.Table, error) {
				return nil, errors.New("synthetic failure")
			},
			Check: func(*core.Table) error { return nil },
		})
		core.Register(&core.Experiment{
			ID: "zz-test-slow", Title: "fake slow", Paper: "n/a",
			Run: func(ctx context.Context, p core.Profile) (*core.Table, error) {
				slowRuns.Add(1)
				slowWait()
				t := core.NewTable("slow", "virtual s", []string{"r"}, []string{"c"})
				t.Set("r", "c", 1)
				return t, nil
			},
			Check: func(*core.Table) error { return nil },
		})
	})
}

func newTestScheduler(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	registerFakes()
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

// TestSingleFlight proves the headline dedup property: N concurrent
// identical submissions share one job and the simulation executes
// exactly once.
func TestSingleFlight(t *testing.T) {
	cache, _ := results.Open("")
	s := newTestScheduler(t, Options{Workers: 4, Cache: cache})
	fakeRuns.Store(0)

	const n = 32
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit("zz-test-ok", core.Quick())
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	for _, j := range jobs {
		if j == nil {
			t.Fatal("missing job")
		}
		if j.ID() != jobs[0].ID() {
			t.Fatalf("concurrent identical submits got jobs %s and %s, want one shared job", jobs[0].ID(), j.ID())
		}
	}
	tab, err := Wait(context.Background(), jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tab.Get("r", "c") != 42 {
		t.Errorf("table cell = %v, want 42", tab.Get("r", "c"))
	}
	if got := fakeRuns.Load(); got != 1 {
		t.Errorf("simulation executed %d times, want exactly 1", got)
	}
	st := s.Stats()
	if st.Executed != 1 || st.Deduped != n-1 {
		t.Errorf("stats = %+v, want executed=1 deduped=%d", st, n-1)
	}
	if st.VirtualSeconds != 42 {
		t.Errorf("virtual seconds = %v, want 42", st.VirtualSeconds)
	}
}

// TestCacheHit proves a later identical submission is served from the
// result cache as an instantly-done job, with no second simulation.
func TestCacheHit(t *testing.T) {
	cache, _ := results.Open("")
	s := newTestScheduler(t, Options{Workers: 2, Cache: cache})
	fakeRuns.Store(0)

	j1, err := s.Submit("zz-test-ok", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wait(context.Background(), j1); err != nil {
		t.Fatal(err)
	}

	j2, err := s.Submit("zz-test-ok", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.Done():
	default:
		t.Fatal("cache-hit job was not done on arrival")
	}
	info := j2.Snapshot()
	if info.Status != StatusDone || !info.CacheHit {
		t.Errorf("snapshot = %+v, want done cache hit", info)
	}
	if j2.ID() == j1.ID() {
		t.Error("cache hit should mint a new job, not resurrect the finished one")
	}
	if got := fakeRuns.Load(); got != 1 {
		t.Errorf("simulation executed %d times, want 1", got)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.Executed != 1 {
		t.Errorf("stats = %+v, want cacheHits=1 executed=1", st)
	}
	if tab, err := j2.Result(); err != nil || tab.Get("r", "c") != 42 {
		t.Errorf("cached result = %v, %v", tab, err)
	}
}

func TestFailedJob(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	j, err := s.Submit("zz-test-fail", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wait(context.Background(), j); err == nil {
		t.Fatal("failing experiment reported success")
	}
	info := j.Snapshot()
	if info.Status != StatusFailed || info.Error == "" {
		t.Errorf("snapshot = %+v, want failed with error", info)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Errorf("stats = %+v, want failed=1", st)
	}

	// Failures are not cached and not deduped against: a resubmit
	// schedules a fresh run.
	j2, err := s.Submit("zz-test-fail", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() == j.ID() {
		t.Error("resubmit after failure joined the dead job")
	}
	Wait(context.Background(), j2)
}

func TestUnknownExperiment(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	if _, err := s.Submit("no-such-experiment", core.Quick()); err == nil {
		t.Fatal("submit of unknown experiment succeeded")
	}
}

func TestJobsAndLookup(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 2})
	j, err := s.Submit("zz-test-ok", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Job(j.ID())
	if !ok || got != j {
		t.Errorf("Job(%s) = %v, %v", j.ID(), got, ok)
	}
	if _, ok := s.Job("job-999999"); ok {
		t.Error("lookup of unknown job succeeded")
	}
	if jobs := s.Jobs(); len(jobs) != 1 || jobs[0] != j {
		t.Errorf("Jobs() = %v", jobs)
	}
	Wait(context.Background(), j)
}

// TestCloseCancelsQueuedJobs pins the shutdown contract: Close fails
// queued jobs with the cancellation error and later submits are
// rejected with ErrClosed.
func TestCloseCancelsQueuedJobs(t *testing.T) {
	registerFakes()
	gate := make(chan struct{})
	setSlowGate(gate)
	defer setSlowGate(nil)
	s := New(Options{Workers: 1})
	before := slowRuns.Load()
	blocker, err := s.Submit("zz-test-slow", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker occupies the only worker, so the next job
	// is definitely queued, not running.
	for i := 0; slowRuns.Load() == before && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit("zz-test-ok", core.Quick())
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	<-s.ctx.Done() // cancellation is delivered before the gate opens...
	close(gate)    // ...so the blocker finishes its run already canceled
	<-done

	if _, err := Wait(context.Background(), queued); !errors.Is(err, context.Canceled) {
		t.Errorf("queued job error = %v, want context.Canceled", err)
	}
	// The blocker was mid-run at cancellation; RunContext reports the
	// cancellation once the run returns.
	<-blocker.Done()
	if blocker.Snapshot().Status != StatusFailed {
		t.Errorf("blocker status = %s, want failed", blocker.Snapshot().Status)
	}
	if _, err := s.Submit("zz-test-ok", core.Quick()); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

// TestJobEviction proves the retained-job index is bounded: once
// MaxJobs is exceeded, the oldest terminated jobs are dropped while
// their results stay available through the cache.
func TestJobEviction(t *testing.T) {
	cache, _ := results.Open("")
	s := newTestScheduler(t, Options{Workers: 1, MaxJobs: 2, Cache: cache})

	profiles := []core.Profile{core.Quick(), core.Full()}
	third := core.Quick()
	third.NeuroT++ // distinct fingerprint → distinct job
	profiles = append(profiles, third)

	var jobs []*Job
	for _, p := range profiles {
		j, err := s.Submit("zz-test-ok", p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Wait(context.Background(), j); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	if _, ok := s.Job(jobs[0].ID()); ok {
		t.Error("oldest terminated job survived past MaxJobs")
	}
	if _, ok := s.Job(jobs[2].ID()); !ok {
		t.Error("newest job was evicted")
	}
	if got := s.Jobs(); len(got) != 2 {
		t.Errorf("retained %d jobs, want 2", len(got))
	}
	// The evicted job's result is still served from the cache.
	if !cache.Contains(jobs[0].Key()) {
		t.Error("evicted job's result missing from cache")
	}

	// The eviction left a tombstone: a poller that kept the job ID can
	// still learn the terminal state and the result key.
	info, ok := s.EvictedInfo(jobs[0].ID())
	if !ok {
		t.Fatal("EvictedInfo: no tombstone for the evicted job")
	}
	if info.Status != StatusDone || !info.Evicted || info.ResultKey != jobs[0].Key() {
		t.Errorf("EvictedInfo = %+v, want done/evicted with key %s", info, jobs[0].Key())
	}
	if info.Experiment != "zz-test-ok" || info.ID != jobs[0].ID() {
		t.Errorf("EvictedInfo identity = %+v", info)
	}
	// Live jobs have no tombstone.
	if _, ok := s.EvictedInfo(jobs[2].ID()); ok {
		t.Error("EvictedInfo answered for a retained job")
	}
	if _, ok := s.EvictedInfo("job-does-not-exist"); ok {
		t.Error("EvictedInfo answered for an unknown ID")
	}
}

// TestEvictedFailedJobTombstone: failed jobs have no cached result, but
// their tombstone still answers a late poll with the terminal failure
// instead of pretending the job never existed.
func TestEvictedFailedJobTombstone(t *testing.T) {
	cache, _ := results.Open("")
	s := newTestScheduler(t, Options{Workers: 1, MaxJobs: 1, Cache: cache})

	fail, err := s.Submit("zz-test-fail", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	<-fail.Done()
	// Push enough terminated jobs through to evict the failed one.
	for _, p := range []core.Profile{core.Quick(), core.Full()} {
		j, err := s.Submit("zz-test-ok", p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Wait(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Job(fail.ID()); ok {
		t.Fatal("failed job not evicted; test setup broken")
	}
	info, ok := s.EvictedInfo(fail.ID())
	if !ok {
		t.Fatal("no tombstone for evicted failed job")
	}
	if info.Status != StatusFailed || info.Error == "" || !info.Evicted {
		t.Errorf("EvictedInfo = %+v, want failed with error", info)
	}
}

func TestQueueFull(t *testing.T) {
	registerFakes()
	gate := make(chan struct{})
	setSlowGate(gate)
	defer setSlowGate(nil)
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer func() {
		close(gate)
		s.Close()
	}()
	before := slowRuns.Load()
	if _, err := s.Submit("zz-test-slow", core.Quick()); err != nil {
		t.Fatal(err)
	}
	for i := 0; slowRuns.Load() == before && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// Worker is blocked; the single queue slot takes one more job...
	if _, err := s.Submit("zz-test-ok", core.Quick()); err != nil {
		t.Fatal(err)
	}
	// ...and a third distinct submission must be rejected, not block.
	if _, err := s.Submit("zz-test-fail", core.Quick()); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit = %v, want ErrQueueFull", err)
	}
}
