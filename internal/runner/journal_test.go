package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/results"
)

func openTestJournal(t *testing.T) *FileJournal {
	t.Helper()
	j, err := OpenJournal(filepath.Join(t.TempDir(), "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	j := openTestJournal(t)
	p := core.Quick()
	recs := []Record{
		{Op: OpSubmit, JobID: "job-1", Key: "k1", Experiment: "fig11", Profile: &p},
		{Op: OpDone, JobID: "job-1", Key: "k1"},
		{Op: OpFail, JobID: "job-2", Key: "k2", Error: "boom"},
	}
	for _, r := range recs {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadJournal(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Op != recs[i].Op || r.JobID != recs[i].JobID || r.Key != recs[i].Key {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
		if r.Time == "" {
			t.Errorf("record %d has no timestamp", i)
		}
	}
	if got[0].Profile == nil || got[0].Profile.Name != "quick" {
		t.Errorf("submit record lost the profile: %+v", got[0].Profile)
	}
	if got[2].Error != "boom" {
		t.Errorf("fail record lost the error: %+v", got[2])
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || recs != nil {
		t.Fatalf("missing journal = %v, %v; want empty, nil", recs, err)
	}
}

// TestJournalTornTail pins the crash model: a partial final line (the
// only corruption a single-write append can produce) is skipped, while
// corruption before intact records is reported.
func TestJournalTornTail(t *testing.T) {
	j := openTestJournal(t)
	p := core.Quick()
	if err := j.Record(Record{Op: OpSubmit, JobID: "job-1", Key: "k1", Experiment: "fig11", Profile: &p}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(j.Path(), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"time":"2026-01-01T0`) // torn mid-record
	f.Close()

	recs, err := ReadJournal(j.Path())
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].Key != "k1" {
		t.Fatalf("records = %+v, want the one intact record", recs)
	}

	// Now append a valid record after the torn line: the torn line is no
	// longer a crash tail but mid-file corruption, and must be reported.
	f, _ = os.OpenFile(j.Path(), os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("\n{\"op\":\"done\",\"job\":\"job-1\",\"key\":\"k1\"}\n")
	f.Close()
	if _, err := ReadJournal(j.Path()); err == nil {
		t.Fatal("mid-file corruption went unreported")
	}
}

func TestPendingReplay(t *testing.T) {
	p := core.Quick()
	recs := []Record{
		{Op: OpSubmit, JobID: "job-1", Key: "done-key", Experiment: "a", Profile: &p},
		{Op: OpSubmit, JobID: "job-2", Key: "pending-key", Experiment: "b", Profile: &p},
		{Op: OpSubmit, JobID: "job-3", Key: "failed-key", Experiment: "c", Profile: &p},
		{Op: OpDone, JobID: "job-1", Key: "done-key"},
		{Op: OpFail, JobID: "job-3", Key: "failed-key", Error: "canceled"},
		// A later cache-hit resubmission of the done key, itself completed.
		{Op: OpSubmit, JobID: "job-4", Key: "done-key", Experiment: "a", Profile: &p},
		{Op: OpDone, JobID: "job-4", Key: "done-key", CacheHit: true},
	}
	got := Pending(recs)
	if len(got) != 2 {
		t.Fatalf("pending = %+v, want 2 jobs", got)
	}
	// First-submission order: pending-key before failed-key.
	if got[0].Key != "pending-key" || got[1].Key != "failed-key" {
		t.Errorf("pending order = %s, %s", got[0].Key, got[1].Key)
	}
	if got[0].Experiment != "b" || got[0].Profile.Name != "quick" {
		t.Errorf("pending job lost identity: %+v", got[0])
	}
	if len(Pending(nil)) != 0 {
		t.Error("empty journal has pending jobs")
	}
}

// TestSchedulerJournalsLifecycle proves the scheduler writes submit,
// done, fail, and cache-hit records at the right moments.
func TestSchedulerJournalsLifecycle(t *testing.T) {
	j := openTestJournal(t)
	cache, _ := results.Open("")
	s := newTestScheduler(t, Options{Workers: 1, Cache: cache, Journal: j})

	ok1, err := s.Submit("zz-test-ok", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wait(context.Background(), ok1); err != nil {
		t.Fatal(err)
	}
	fail, err := s.Submit("zz-test-fail", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	Wait(context.Background(), fail)
	hit, err := s.Submit("zz-test-ok", core.Quick()) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Snapshot().CacheHit {
		t.Fatal("third submit was not a cache hit")
	}

	recs, err := ReadJournal(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for _, r := range recs {
		ops = append(ops, r.Op)
	}
	want := []Op{OpSubmit, OpDone, OpSubmit, OpFail, OpSubmit, OpDone}
	if len(ops) != len(want) {
		t.Fatalf("journal ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("journal ops = %v, want %v", ops, want)
		}
	}
	if !recs[5].CacheHit {
		t.Error("cache-hit completion not marked in journal")
	}
	if recs[0].Profile == nil {
		t.Error("submit record missing profile")
	}
	if s.Stats().JournalErrors != 0 {
		t.Errorf("journal errors = %d", s.Stats().JournalErrors)
	}

	// Everything completed: nothing pending except the failure.
	pending := Pending(recs)
	if len(pending) != 1 || pending[0].Experiment != "zz-test-fail" {
		t.Errorf("pending after clean run = %+v, want just the failed job", pending)
	}
}

// TestRecoverResubmitsPendingOnly is the crash-recovery contract: after
// a simulated crash, Recover re-runs exactly the unfinished jobs, and
// completed jobs come back as cache hits without re-executing.
func TestRecoverResubmitsPendingOnly(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	cacheDir := filepath.Join(dir, "cache")

	// "Process one": run zz-test-ok to completion, accept zz-test-slow
	// but crash (abandon the scheduler) before it finishes.
	registerFakes()
	fakeRuns.Store(0)
	j1, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	cache1, err := results.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	setSlowGate(gate)
	defer setSlowGate(nil)
	s1 := New(Options{Workers: 1, Cache: cache1, Journal: j1})
	done, err := s1.Submit("zz-test-ok", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wait(context.Background(), done); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit("zz-test-slow", core.Quick()); err != nil {
		t.Fatal(err)
	}
	// Crash: close the scheduler while the slow job blocks. Cancellation
	// reaches the run before the gate opens, so the job journals a fail —
	// which replay treats as pending.
	closed := make(chan struct{})
	go func() { s1.Close(); close(closed) }()
	<-s1.ctx.Done()
	close(gate)
	<-closed
	j1.Close()

	// "Process two": fresh cache view, journal, scheduler on the same dirs.
	slowRuns.Store(0)
	fakeRuns.Store(0)
	cache2, err := results.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := New(Options{Workers: 2, Cache: cache2, Journal: j2})
	defer s2.Close()
	n, err := Recover(journalPath, s2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1 (the unfinished slow job)", n)
	}
	for _, job := range s2.Jobs() {
		if _, err := Wait(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	if got := slowRuns.Load(); got != 1 {
		t.Errorf("pending job re-executed %d times after recovery, want 1", got)
	}
	if got := fakeRuns.Load(); got != 0 {
		t.Errorf("completed job re-executed %d times after recovery, want 0", got)
	}

	// A client re-requesting the completed job gets a cache hit from disk.
	hit, err := s2.Submit("zz-test-ok", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if info := hit.Snapshot(); !info.CacheHit || info.Status != StatusDone {
		t.Errorf("completed job after restart = %+v, want instant cache hit", info)
	}
	if got := fakeRuns.Load(); got != 0 {
		t.Errorf("completed job re-executed after restart")
	}
}

// TestQueueFullIsJournaledAsRetryable pins the shed-load contract: a
// submission rejected by a full queue leaves submit+fail in the
// journal, so the shed job is retried at the next recovery.
func TestQueueFullIsJournaledAsRetryable(t *testing.T) {
	j := openTestJournal(t)
	registerFakes()
	gate := make(chan struct{})
	setSlowGate(gate)
	defer setSlowGate(nil)
	s := New(Options{Workers: 1, QueueDepth: 1, Journal: j})
	defer func() {
		close(gate)
		s.Close()
	}()
	before := slowRuns.Load()
	if _, err := s.Submit("zz-test-slow", core.Quick()); err != nil {
		t.Fatal(err)
	}
	for i := 0; slowRuns.Load() == before && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit("zz-test-ok", core.Quick()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("zz-test-fail", core.Quick()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}
	recs, err := ReadJournal(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	var sawFail bool
	for _, r := range recs {
		if r.Op == OpFail && r.Error == ErrQueueFull.Error() {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatalf("no queue-full fail record in journal: %+v", recs)
	}
	// The shed job stays pending, so recovery would retry it.
	var found bool
	for _, p := range Pending(recs) {
		if p.Experiment == "zz-test-fail" {
			found = true
		}
	}
	if !found {
		t.Error("shed job not pending after replay")
	}
}

// TestReopenTruncatesTornTail pins the reopen contract: OpenJournal
// drops a torn trailing fragment, so records appended by the next
// process start on their own line and every later recovery still
// parses the journal cleanly.
func TestReopenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Quick()
	if err := j1.Record(Record{Op: OpSubmit, JobID: "job-1", Key: "k1", Experiment: "fig11", Profile: &p}); err != nil {
		t.Fatal(err)
	}
	j1.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString(`{"time":"2026-01-01T0`) // crash mid-record
	f.Close()

	// "Restart": reopen and append as the recovering process would.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Record(Record{Op: OpSubmit, JobID: "job-2", Key: "k2", Experiment: "fig11", Profile: &p}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("journal corrupted by reopen-after-crash: %v", err)
	}
	if len(recs) != 2 || recs[0].Key != "k1" || recs[1].Key != "k2" {
		t.Fatalf("records = %+v, want k1 then k2", recs)
	}
}

// TestJournalRejectsMultipleBadLines pins the corruption bound: only a
// single trailing torn line is tolerated.
func TestJournalRejectsMultipleBadLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"op":"submit","job":"job-1","key":"k1"}` + "\n{bad one}\n{bad two}"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("two malformed lines went unreported")
	}
}

// TestCompactJournal pins the startup-compaction contract: completed
// history is dropped, only the first submit of each pending key
// survives, and replaying the compacted file yields the same pending
// set.
func TestCompactJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Quick()
	for _, r := range []Record{
		{Op: OpSubmit, JobID: "job-1", Key: "done-key", Experiment: "a", Profile: &p},
		{Op: OpDone, JobID: "job-1", Key: "done-key"},
		{Op: OpSubmit, JobID: "job-2", Key: "pend-key", Experiment: "b", Profile: &p},
		{Op: OpSubmit, JobID: "job-3", Key: "fail-key", Experiment: "c", Profile: &p},
		{Op: OpFail, JobID: "job-3", Key: "fail-key", Error: "boom"},
	} {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	before := Pending(mustRead(t, path))
	kept, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Fatalf("kept %d records, want 2 (pend-key, fail-key)", kept)
	}
	recs := mustRead(t, path)
	if len(recs) != 2 {
		t.Fatalf("compacted journal has %d records, want 2: %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.Op != OpSubmit || r.Profile == nil {
			t.Errorf("compacted record not a replayable submit: %+v", r)
		}
	}
	after := Pending(recs)
	if len(after) != len(before) {
		t.Fatalf("pending set changed by compaction: %v vs %v", after, before)
	}
	for i := range after {
		if after[i].Key != before[i].Key {
			t.Errorf("pending[%d] = %s, want %s", i, after[i].Key, before[i].Key)
		}
	}

	// Compacting a missing journal is a no-op.
	if kept, err := CompactJournal(filepath.Join(t.TempDir(), "none.jsonl")); err != nil || kept != 0 {
		t.Errorf("compact of missing journal = %d, %v", kept, err)
	}
}

func mustRead(t *testing.T, path string) []Record {
	t.Helper()
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestFailedWriteThroughJournalsAsPending pins the durability contract
// behind OpDone: a job whose result could not be written through to the
// disk cache is journaled as a failure, so recovery re-runs it instead
// of retiring a key whose table would 404 after restart.
func TestFailedWriteThroughJournalsAsPending(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	cache, err := results.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	// Make the write-through fail deterministically: the destination
	// path of this job's cache file is occupied by a directory, so the
	// atomic rename fails while the in-memory entry still stores.
	registerFakes()
	key := results.Key("zz-test-ok", core.Quick())
	if err := os.MkdirAll(filepath.Join(cacheDir, key+".json"), 0o755); err != nil {
		t.Fatal(err)
	}

	j := openTestJournal(t)
	s := newTestScheduler(t, Options{Workers: 1, Cache: cache, Journal: j})
	job, err := s.Submit("zz-test-ok", core.Quick())
	if err != nil {
		t.Fatal(err)
	}
	// The job still succeeds for this process...
	if _, err := Wait(context.Background(), job); err != nil {
		t.Fatalf("job failed outright: %v", err)
	}
	// ...but the journal keeps it pending for the next recovery.
	recs := mustRead(t, j.Path())
	last := recs[len(recs)-1]
	if last.Op != OpFail || last.Key != key {
		t.Fatalf("last record = %+v, want OpFail for the write-through failure", last)
	}
	pending := Pending(recs)
	if len(pending) != 1 || pending[0].Key != key {
		t.Fatalf("pending = %+v, want the write-through-failed job", pending)
	}
}
