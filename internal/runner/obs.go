package runner

import (
	"context"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/obs"
)

// This file wires the scheduler into the observability spine
// (internal/obs): a span tree per job (queued → execute → cache-write,
// with the per-engine stage spans hanging below execute), dedup and
// cache-hit span events, and the scheduler's Prometheus metrics — all
// of it inert when Options.Tracer and Options.Metrics are nil.

// registerMetrics publishes the scheduler's counters and gauges on the
// configured registry. The exported values read the same atomics Stats
// reports, so /metrics and /metrics.json can never disagree.
func (s *Scheduler) registerMetrics(m *obs.Registry) {
	m.NewGaugeFunc("imagebench_workers",
		"Scheduler worker-pool size.",
		func() float64 { return float64(s.opts.Workers) })
	m.NewCounterFunc("imagebench_jobs_submitted_total",
		"Jobs accepted by the scheduler since start.",
		func() float64 { return float64(s.submitted.Load()) })
	m.NewCounterFunc("imagebench_jobs_executed_total",
		"Jobs that ran to completion on the worker pool.",
		func() float64 { return float64(s.executed.Load()) })
	m.NewCounterFunc("imagebench_jobs_failed_total",
		"Jobs that reached a terminal failure.",
		func() float64 { return float64(s.failed.Load()) })
	m.NewCounterFunc("imagebench_jobs_deduped_total",
		"Submissions joined to an identical in-flight job.",
		func() float64 { return float64(s.deduped.Load()) })
	m.NewCounterFunc("imagebench_jobs_cache_hits_total",
		"Submissions served directly from the result cache.",
		func() float64 { return float64(s.cacheHits.Load()) })
	m.NewGaugeFunc("imagebench_jobs_running",
		"Jobs currently executing on the worker pool.",
		func() float64 { return float64(s.running.Load()) })
	m.NewGaugeFunc("imagebench_jobs_in_flight",
		"Jobs queued or running (the single-flight index size).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.inflight))
		})
	m.NewCounterFunc("imagebench_journal_errors_total",
		"Journal appends that failed (best-effort writes).",
		func() float64 { return float64(s.journalErrs.Load()) })
	m.NewCounterFunc("imagebench_virtual_seconds_simulated_total",
		"Total simulated (virtual) seconds across executed experiments.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.vsecs
		})
	s.jobLatency = m.NewHistogram("imagebench_job_latency_seconds",
		"Wall-clock job latency from submission to terminal state.",
		obs.DefLatencyBuckets)
}

// withObs attaches the scheduler's tracer and registry to ctx when the
// caller has not already supplied them (a sweep passing its root-span
// context carries the same tracer and keeps its parentage).
func (s *Scheduler) withObs(ctx context.Context) context.Context {
	if s.opts.Tracer != nil && obs.TracerFrom(ctx) == nil {
		ctx = obs.WithTracer(ctx, s.opts.Tracer)
	}
	if s.opts.Metrics != nil && obs.RegistryFrom(ctx) == nil {
		ctx = obs.WithRegistry(ctx, s.opts.Metrics)
	}
	return ctx
}

// ObsContext returns a background context carrying the scheduler's
// observability plumbing — the parent context for work (like sweeps)
// that wants its spans on the scheduler's tracer.
func (s *Scheduler) ObsContext() context.Context {
	return s.withObs(context.Background())
}

// startJobSpans opens the job's root span and its queued child. The
// execute context must derive from the scheduler's cancellation context,
// not the submitter's, so only the span values are retained.
func (j *Job) startJobSpans(ctx context.Context, e *core.Experiment) {
	jctx, span := obs.StartSpan(ctx, "job "+e.ID)
	if span == nil {
		return
	}
	span.SetAttr("experiment", e.ID)
	span.SetAttr("profile", j.profile.Name)
	span.SetAttr("job", j.id)
	span.SetAttr("key", j.key)
	j.span = span
	j.obsCtx = jctx
	_, queued := obs.StartSpan(jctx, "queued")
	j.queuedSpan = queued
}

// execCtxValues returns the job's observability context (the root
// span's context) or a background context when tracing is off — the
// parent for auxiliary spans like cache-write that must not inherit
// the execute span.
func (j *Job) execCtxValues() context.Context {
	if j.obsCtx != nil {
		return j.obsCtx
	}
	return context.Background()
}

// execCtx overlays the job's observability values (tracer, registry,
// parent span) onto the scheduler's cancellation context: cancellation
// always follows s.ctx, span parentage follows the submission.
func (s *Scheduler) execCtx(j *Job) context.Context {
	ctx := s.ctx
	if j.obsCtx == nil {
		return ctx
	}
	if t := obs.TracerFrom(j.obsCtx); t != nil {
		ctx = obs.WithTracer(ctx, t)
	}
	if r := obs.RegistryFrom(j.obsCtx); r != nil {
		ctx = obs.WithRegistry(ctx, r)
	}
	if sp := obs.SpanFrom(j.obsCtx); sp != nil {
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	return ctx
}

// finishJob is the single terminal-state path: it settles the job,
// observes its latency, and closes its span tree. Every finish site in
// Submit and run goes through it.
func (s *Scheduler) finishJob(j *Job, tab *core.Table, err error, cacheHit bool) {
	j.finish(tab, err, cacheHit)
	if s.jobLatency != nil {
		s.jobLatency.Observe(time.Since(j.submitted).Seconds())
	}
	if j.span == nil {
		return
	}
	j.queuedSpan.End()
	if cacheHit {
		j.span.AddEvent("cache-hit")
	}
	if err != nil {
		j.span.SetAttr("error", err.Error())
	}
	j.span.End()
}
