package runner

import (
	"strings"
	"sync"
	"testing"

	"imagebench/internal/core"
	"imagebench/internal/obs"
)

// TestJobSpansConcurrent submits distinct jobs from many goroutines
// under a shared tracer and verifies every executed job produced a
// root span with nested queued and execute children. Run under -race
// in CI, this is also the data-race assertion for the obs plumbing.
func TestJobSpansConcurrent(t *testing.T) {
	registerFakes()
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	s := newTestScheduler(t, Options{Workers: 4, Tracer: tracer, Metrics: reg})

	const n = 8
	var wg sync.WaitGroup
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct profiles so the submissions are not deduplicated.
			p := core.Quick()
			p.NeuroSubjects = []int{i + 1}
			j, err := s.Submit("zz-test-ok", p)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	for _, j := range jobs {
		if j != nil {
			<-j.Done()
		}
	}

	byParent := make(map[uint64][]string)
	roots := 0
	for _, sp := range tracer.Spans() {
		if sp.ParentID == 0 {
			if strings.HasPrefix(sp.Name, "job ") {
				roots++
			}
			continue
		}
		byParent[sp.ParentID] = append(byParent[sp.ParentID], sp.Name)
	}
	if roots != n {
		t.Errorf("got %d job root spans, want %d", roots, n)
	}
	for _, sp := range tracer.Spans() {
		if sp.ParentID != 0 || !strings.HasPrefix(sp.Name, "job ") {
			continue
		}
		kids := byParent[sp.ID]
		for _, want := range []string{"queued", "execute"} {
			found := false
			for _, k := range kids {
				if k == want {
					found = true
				}
			}
			if !found {
				t.Errorf("job span %d missing %q child (has %v)", sp.ID, want, kids)
			}
		}
	}

	// The latency histogram saw every terminal job.
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"imagebench_job_latency_seconds_count 8",
		"imagebench_jobs_submitted_total 8",
		"imagebench_jobs_executed_total 8",
		`imagebench_job_latency_seconds_bucket{le="+Inf"} 8`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

// TestSubmitWithContextParentsUnderSpan checks that a caller-supplied
// span context (the sweep root) becomes the job span's parent, while a
// plain Submit produces a root-level job span.
func TestSubmitWithContextParentsUnderSpan(t *testing.T) {
	registerFakes()
	tracer := obs.NewTracer()
	s := newTestScheduler(t, Options{Workers: 2, Tracer: tracer})

	ctx, root := obs.StartSpan(s.ObsContext(), "sweep")
	p := core.Quick()
	p.NeuroSubjects = []int{99}
	j, err := s.SubmitWithContext(ctx, "zz-test-ok", p)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	root.End()

	var jobSpan *obs.Span
	for _, sp := range tracer.Spans() {
		if strings.HasPrefix(sp.Name, "job ") {
			jobSpan = sp
		}
	}
	if jobSpan == nil {
		t.Fatal("no job span recorded")
	}
	if jobSpan.ParentID != root.ID {
		t.Errorf("job span parent = %d, want sweep root %d", jobSpan.ParentID, root.ID)
	}
	if jobSpan.RootID != root.ID {
		t.Errorf("job span root = %d, want %d", jobSpan.RootID, root.ID)
	}
}
