// Package runner is the experiment scheduler of the service layer: a
// bounded worker pool that executes core experiments concurrently, with
// per-job status, context cancellation, single-flight deduplication of
// identical requests, and write-through to the content-addressed result
// cache (internal/results). The CLI and the imagebenchd daemon both run
// experiments through it, so a 24-experiment sweep uses every core
// instead of one.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/engine"
	"imagebench/internal/obs"
	"imagebench/internal/results"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// ErrQueueFull is returned by Submit when the scheduler's backlog is at
// capacity; callers should retry later or shed load.
var ErrQueueFull = errors.New("runner: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("runner: scheduler closed")

// Options configures a Scheduler.
type Options struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the backlog of queued jobs; 0 means 1024.
	QueueDepth int
	// MaxJobs bounds the retained job index: once exceeded, the oldest
	// *terminated* jobs are evicted (their results stay in the cache).
	// 0 means 4096. The daemon is long-lived; without a bound the job
	// index would grow by one entry per submission forever.
	MaxJobs int
	// Cache, when non-nil, is consulted before scheduling and written
	// through after every successful run.
	Cache *results.Cache
	// Journal, when non-nil, receives a record for every accepted
	// submission and every terminal state, making the queue crash-safe:
	// replaying the journal after a restart (see Recover) resubmits
	// exactly the jobs that never finished. Journal write failures do
	// not fail jobs; they are counted in Stats.JournalErrors.
	Journal Journal
	// Tracer, when non-nil, records a span tree per job (queued →
	// execute → cache-write, plus the per-engine stage spans emitted
	// inside the simulations).
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the scheduler's Prometheus
	// metrics: job-lifecycle counters, pool gauges, and the
	// imagebench_job_latency_seconds histogram.
	Metrics *obs.Registry
}

// Job is one scheduled experiment run. Jobs are created by Submit and
// owned by the scheduler; read them through Snapshot, Done, and Result.
type Job struct {
	id      string
	key     string
	exp     *core.Experiment
	profile core.Profile
	done    chan struct{}

	// Observability state, set once at submission (nil without a
	// tracer): the job's root span, its queued child, and the context
	// whose values parent the execute-phase spans.
	span       *obs.Span
	queuedSpan *obs.Span
	obsCtx     context.Context

	mu        sync.Mutex
	status    Status
	err       error
	table     *core.Table
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Info is a point-in-time view of a job, shaped for JSON.
type Info struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Profile    string `json:"profile"`
	ResultKey  string `json:"resultKey"`
	Status     Status `json:"status"`
	Error      string `json:"error,omitempty"`
	// Unsupported marks a failure that wraps engine.ErrUnsupported: the
	// (experiment, engine-filter) combination is not applicable — e.g. a
	// Myria tuning study under a Spark-only systems filter — rather than
	// broken. Sweep grids render these cells as "n/a", not errors.
	Unsupported bool    `json:"unsupported,omitempty"`
	CacheHit    bool    `json:"cacheHit"`
	Submitted   string  `json:"submitted"`
	ElapsedSec  float64 `json:"elapsedSec"`
	// Evicted marks an Info reconstructed from an eviction tombstone:
	// the job itself left the retained index (MaxJobs exceeded), but its
	// terminal state — and, for done jobs, its result in the
	// content-addressed cache — survived it.
	Evicted bool `json:"evicted,omitempty"`
}

// ID returns the job's scheduler-assigned identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's content-addressed result key.
func (j *Job) Key() string { return j.key }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's table and error. It is only meaningful after
// Done is closed; before that it reports the job as still pending.
func (j *Job) Result() (*core.Table, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone:
		return j.table, nil
	case StatusFailed:
		return nil, j.err
	}
	return nil, fmt.Errorf("runner: job %s still %s", j.id, j.status)
}

// ReleaseTable drops a done job's reference to its result table, so a
// batch consumer that has already written the result out (the
// streaming sweep artifact) returns the memory to the GC immediately
// instead of holding every cell's table until eviction — O(workers)
// live tables instead of O(cells). Subsequent Result calls on a
// released job return (nil, nil); callers that may read a result twice
// must not release it in between. Snapshot and the job's terminal
// status are unaffected. No-op unless the job is done.
func (j *Job) ReleaseTable() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone {
		j.table = nil
	}
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:         j.id,
		Experiment: j.exp.ID,
		Profile:    j.profile.Name,
		ResultKey:  j.key,
		Status:     j.status,
		CacheHit:   j.cacheHit,
		Submitted:  j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if j.err != nil {
		info.Error = j.err.Error()
		info.Unsupported = errors.Is(j.err, engine.ErrUnsupported)
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		info.ElapsedSec = j.finished.Sub(j.started).Seconds()
	case !j.started.IsZero():
		info.ElapsedSec = time.Since(j.started).Seconds()
	}
	return info
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) finish(tab *core.Table, err error, cacheHit bool) {
	j.mu.Lock()
	if err != nil {
		j.status = StatusFailed
		j.err = err
	} else {
		j.status = StatusDone
		j.table = tab
	}
	j.cacheHit = cacheHit
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Stats aggregates scheduler activity since construction.
type Stats struct {
	Workers        int     `json:"workers"`
	Submitted      int64   `json:"jobsSubmitted"`
	Executed       int64   `json:"jobsExecuted"`
	Failed         int64   `json:"jobsFailed"`
	Deduped        int64   `json:"jobsDeduped"`
	CacheHits      int64   `json:"cacheHits"`
	InFlight       int     `json:"inFlight"`
	Running        int64   `json:"running"`
	JournalErrors  int64   `json:"journalErrors"`
	VirtualSeconds float64 `json:"virtualSecondsSimulated"`
}

// Scheduler runs experiments on a bounded worker pool.
type Scheduler struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Job
	wg     sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job // by job ID
	order    []*Job          // retained jobs in submission order
	inflight map[string]*Job // by result key, queued or running
	nextSeq  int64
	vsecs    float64 // virtual seconds simulated (guarded by mu)

	// Eviction tombstones: when evictLocked drops a terminated job, the
	// few bytes a poller needs to find its result again (the job ID →
	// result key mapping plus terminal state) are retained here, FIFO-
	// bounded by MaxJobs. Without this, a submit-then-poll client whose
	// job was evicted under load sees a 404 even though the result is
	// sitting in the content-addressed cache.
	tombs     map[string]tombstone
	tombOrder []string

	jobLatency *obs.Histogram

	submitted   atomic.Int64
	executed    atomic.Int64
	failed      atomic.Int64
	deduped     atomic.Int64
	cacheHits   atomic.Int64
	running     atomic.Int64
	journalErrs atomic.Int64
}

// journal appends a record to the configured journal, best-effort: a
// write failure (disk full, closed file) never fails the job, it only
// increments the JournalErrors counter.
func (s *Scheduler) journal(r Record) {
	if s.opts.Journal == nil {
		return
	}
	if err := s.opts.Journal.Record(r); err != nil {
		s.journalErrs.Add(1)
	}
}

// journalSubmit records an accepted submission.
func (s *Scheduler) journalSubmit(j *Job) {
	if s.opts.Journal == nil {
		return
	}
	p := j.profile
	s.journal(Record{Op: OpSubmit, JobID: j.id, Key: j.key, Experiment: j.exp.ID, Profile: &p})
}

// New starts a scheduler with opts.Workers workers.
func New(opts Options) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opts:     opts,
		ctx:      ctx,
		cancel:   cancel,
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	if opts.Metrics != nil {
		s.registerMetrics(opts.Metrics)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit schedules one experiment run under p and returns its job.
// Identical requests are deduplicated twice over: if an identical job
// is queued or running, Submit returns that same job (single-flight);
// if the result is already cached, Submit returns a job that is done on
// arrival, served from the cache without touching the worker pool.
func (s *Scheduler) Submit(experimentID string, p core.Profile) (*Job, error) {
	return s.SubmitWithContext(context.Background(), experimentID, p)
}

// SubmitWithContext is Submit with a caller context used ONLY for span
// parentage (a sweep passes its root-span context so cell jobs nest
// under the sweep): cancellation still follows the scheduler's own
// lifecycle, never the submitter's.
func (s *Scheduler) SubmitWithContext(ctx context.Context, experimentID string, p core.Profile) (*Job, error) {
	e, err := core.Lookup(experimentID)
	if err != nil {
		return nil, err
	}
	ctx = s.withObs(ctx)
	key := results.Key(e.ID, p)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if j, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.deduped.Add(1)
		j.span.AddEvent("dedup-join")
		return j, nil
	}
	j := s.newJobLocked(e, p, key)
	j.startJobSpans(ctx, e)

	// Serve from cache without scheduling. The cache probe happens with
	// the job registered in-flight so a concurrent identical Submit
	// joins this job rather than racing the probe.
	if s.opts.Cache != nil {
		s.inflight[key] = j
		s.mu.Unlock()
		if entry, ok := s.opts.Cache.Get(key); ok {
			s.cacheHits.Add(1)
			// Journal before finish: once Done is observable, the
			// job's records must already be on disk, or an action taken
			// by an awakened waiter could journal ahead of them.
			s.journalSubmit(j)
			s.journal(Record{Op: OpDone, JobID: j.id, Key: j.key, CacheHit: true})
			s.finishJob(j, entry.Table, nil, true)
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			return j, nil
		}
		s.mu.Lock()
		if s.closed {
			// The job stays registered (a concurrent identical Submit
			// may have joined it and handed out its ID) but fails.
			delete(s.inflight, key)
			s.mu.Unlock()
			s.failed.Add(1)
			s.finishJob(j, nil, ErrClosed, false)
			return nil, ErrClosed
		}
	} else {
		s.inflight[key] = j
	}

	// The submit record is written before the job becomes runnable (and
	// before s.mu is released), so it is ordered before the worker's
	// done/fail record and a crash after this point can never lose an
	// accepted job. The cost is one file append under the lock.
	s.journalSubmit(j)
	select {
	case s.queue <- j:
		s.mu.Unlock()
		return j, nil
	default:
		delete(s.inflight, key)
		s.mu.Unlock()
		s.failed.Add(1)
		// Retires nothing: a fail record leaves the key pending, so the
		// shed job is retried on the next recovery, which is the right
		// default for a full queue.
		s.journal(Record{Op: OpFail, JobID: j.id, Key: j.key, Error: ErrQueueFull.Error()})
		s.finishJob(j, nil, ErrQueueFull, false)
		return nil, ErrQueueFull
	}
}

// newJobLocked registers a fresh queued job; s.mu must be held.
func (s *Scheduler) newJobLocked(e *core.Experiment, p core.Profile, key string) *Job {
	s.nextSeq++
	j := &Job{
		id:        fmt.Sprintf("job-%d", s.nextSeq),
		key:       key,
		exp:       e,
		profile:   p,
		done:      make(chan struct{}),
		status:    StatusQueued,
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.submitted.Add(1)
	s.evictLocked()
	return j
}

// tombstone is what eviction keeps of a terminated job: enough to
// answer a late poll (terminal status, result key) without retaining
// the job, its table reference, or its span tree.
type tombstone struct {
	key         string
	experiment  string
	profile     string
	status      Status
	errMsg      string
	unsupported bool
	cacheHit    bool
	submitted   time.Time
	elapsedSec  float64
}

// evictLocked trims terminated jobs, oldest first, once the retained
// index exceeds MaxJobs; s.mu must be held. Queued and running jobs are
// never evicted, so the index can exceed the bound transiently while
// that many jobs are genuinely live. Each evicted job leaves a
// tombstone (see EvictedInfo), themselves FIFO-bounded by MaxJobs.
func (s *Scheduler) evictLocked() {
	if len(s.jobs) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if len(s.jobs) > s.opts.MaxJobs && j.terminated() {
			delete(s.jobs, j.id)
			s.entombLocked(j)
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil // release evicted jobs to the GC
	}
	s.order = kept
}

// entombLocked records an evicted job's terminal state; s.mu must be
// held and the job must be terminated (its fields are settled, so
// reading them without j.mu cannot race finish).
func (s *Scheduler) entombLocked(j *Job) {
	if s.tombs == nil {
		s.tombs = make(map[string]tombstone)
	}
	t := tombstone{
		key:        j.key,
		experiment: j.exp.ID,
		profile:    j.profile.Name,
		status:     j.status,
		cacheHit:   j.cacheHit,
		submitted:  j.submitted,
	}
	if j.err != nil {
		t.errMsg = j.err.Error()
		t.unsupported = errors.Is(j.err, engine.ErrUnsupported)
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		t.elapsedSec = j.finished.Sub(j.started).Seconds()
	}
	s.tombs[j.id] = t
	s.tombOrder = append(s.tombOrder, j.id)
	// A tombstone is ~150 bytes against a job's table and span tree, so
	// retaining 4x MaxJobs of them is cheap and keeps the poll window
	// usefully wider than the job window under heavy submit traffic.
	for len(s.tombOrder) > 4*s.opts.MaxJobs {
		delete(s.tombs, s.tombOrder[0])
		s.tombOrder = s.tombOrder[1:]
	}
}

// EvictedInfo reconstructs a terminal Info for a job that was evicted
// from the retained index. For done jobs it additionally requires the
// result to still be present in the cache (checked with Peek, so the
// probe does not skew client hit rates): a tombstone whose result has
// vanished is as unanswerable as no tombstone at all.
func (s *Scheduler) EvictedInfo(id string) (Info, bool) {
	s.mu.Lock()
	t, ok := s.tombs[id]
	s.mu.Unlock()
	if !ok {
		return Info{}, false
	}
	if t.status == StatusDone {
		if s.opts.Cache == nil {
			return Info{}, false
		}
		if _, ok := s.opts.Cache.Peek(t.key); !ok {
			return Info{}, false
		}
	}
	return Info{
		ID:          id,
		Experiment:  t.experiment,
		Profile:     t.profile,
		ResultKey:   t.key,
		Status:      t.status,
		Error:       t.errMsg,
		Unsupported: t.unsupported,
		CacheHit:    t.cacheHit,
		Submitted:   t.submitted.UTC().Format(time.RFC3339Nano),
		ElapsedSec:  t.elapsedSec,
		Evicted:     true,
	}, true
}

// terminated reports whether the job has reached a terminal state.
func (j *Job) terminated() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Job returns the job with the given ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns the retained jobs in submission order (the oldest
// terminated jobs are evicted once the index exceeds Options.MaxJobs).
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	inflight := len(s.inflight)
	vsecs := s.vsecs
	s.mu.Unlock()
	return Stats{
		Workers:        s.opts.Workers,
		Submitted:      s.submitted.Load(),
		Executed:       s.executed.Load(),
		Failed:         s.failed.Load(),
		Deduped:        s.deduped.Load(),
		CacheHits:      s.cacheHits.Load(),
		InFlight:       inflight,
		Running:        s.running.Load(),
		JournalErrors:  s.journalErrs.Load(),
		VirtualSeconds: vsecs,
	}
}

// Close cancels in-flight work and waits for the workers to exit.
// Queued jobs fail with the cancellation error; Submit afterwards
// returns ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	close(s.queue)
	s.wg.Wait()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job. On success the result is written to the cache
// before the job leaves the in-flight map, so a concurrent identical
// Submit always sees either the in-flight job or the cached result —
// never a gap that would re-run the simulation.
func (s *Scheduler) run(j *Job) {
	j.setRunning()
	s.running.Add(1)
	defer s.running.Add(-1)
	j.queuedSpan.End()

	execCtx, execSpan := obs.StartSpan(s.execCtx(j), "execute")
	tab, err := j.exp.RunContext(execCtx, j.profile)
	if err != nil {
		execSpan.SetAttr("error", err.Error())
	}
	execSpan.End()
	if err != nil {
		// Leave the in-flight map before signaling completion:
		// failures are not cached, so a resubmit arriving after Done
		// must schedule a fresh run, not join this dead job.
		s.mu.Lock()
		delete(s.inflight, j.key)
		s.mu.Unlock()
		s.failed.Add(1)
		// Journal before finish (see the cache-hit path in Submit).
		s.journal(Record{Op: OpFail, JobID: j.id, Key: j.key, Error: err.Error()})
		s.finishJob(j, nil, err, false)
		return
	}

	s.executed.Add(1)
	var putErr error
	if s.opts.Cache != nil {
		// A write-through failure (disk full, unwritable dir) does not
		// fail the job — the in-memory entry still serves this process —
		// but it does change what gets journaled below.
		_, putSpan := obs.StartSpan(j.execCtxValues(), "cache-write")
		putErr = s.opts.Cache.Put(&results.Entry{
			Key: j.key, Experiment: j.exp.ID, Profile: j.profile, Table: tab,
		})
		if putErr != nil {
			putSpan.SetAttr("error", putErr.Error())
		}
		putSpan.End()
	}
	s.mu.Lock()
	s.vsecs += tab.VirtualSeconds()
	delete(s.inflight, j.key)
	s.mu.Unlock()
	// The terminal record lands after the cache write-through (a
	// journaled OpDone implies the result is rereadable from the cache)
	// but before finish closes Done, so an awakened waiter can never
	// journal ahead of it. When the write-through failed, the result
	// will NOT survive a restart, so the job is journaled as a failure
	// instead: replay keeps it pending and re-runs it.
	if putErr != nil {
		s.journal(Record{Op: OpFail, JobID: j.id, Key: j.key,
			Error: fmt.Sprintf("completed, but cache write-through failed: %v", putErr)})
	} else {
		s.journal(Record{Op: OpDone, JobID: j.id, Key: j.key})
	}
	s.finishJob(j, tab, nil, false)
}

// Wait blocks until the job terminates or ctx is canceled, returning
// the job's result.
func Wait(ctx context.Context, j *Job) (*core.Table, error) {
	select {
	case <-j.Done():
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
