package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/fsatomic"
)

// The job journal makes the scheduler's work queue crash-safe: every
// submission and completion is appended, one JSON object per line, to a
// plain text file. After a crash or restart, replaying the journal
// yields the set of jobs that were accepted but never finished — those
// are resubmitted — while finished jobs need no replay at all, because
// the result cache (internal/results) already holds their tables on
// disk and a resubmission becomes an instant cache hit.
//
// Crash-safety model: each record is written as a single write(2) of a
// complete line to an O_APPEND descriptor, so concurrent writers never
// interleave mid-line and a crash can only tear the final line. The
// reader tolerates exactly that: an unparseable trailing line is
// ignored, anything torn earlier is reported as corruption.

// Op is the journal record type.
type Op string

const (
	// OpSubmit records a job accepted by the scheduler (including jobs
	// answered straight from the result cache).
	OpSubmit Op = "submit"
	// OpDone records a successful completion; the result is in the
	// cache by the time this is written.
	OpDone Op = "done"
	// OpFail records a terminal failure. Failed jobs are treated as
	// pending by replay: a failure may be transient (cancellation at
	// shutdown, resource pressure), and re-running a deterministic
	// simulation is always safe.
	OpFail Op = "fail"
)

// Record is one journal line.
type Record struct {
	Time       string        `json:"time"`
	Op         Op            `json:"op"`
	JobID      string        `json:"job"`
	Key        string        `json:"key"`
	Experiment string        `json:"experiment,omitempty"`
	Profile    *core.Profile `json:"profile,omitempty"` // submit records only
	CacheHit   bool          `json:"cacheHit,omitempty"`
	Error      string        `json:"error,omitempty"`
}

// Journal persists job lifecycle records. Implementations must be safe
// for concurrent use; the scheduler writes from every worker.
type Journal interface {
	Record(r Record) error
	Close() error
}

// FileJournal is the append-only JSONL Journal used by imagebenchd.
type FileJournal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. If the previous process crashed mid-write, the file ends
// in a torn partial line; that fragment is truncated away first — the
// record never durably existed, and appending after it would merge two
// records into one malformed mid-file line, turning a tolerated torn
// tail into corruption that poisons every later recovery.
func OpenJournal(path string) (*FileJournal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open journal %s: %w", path, err)
	}
	if err := truncateTornTail(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: repair journal %s: %w", path, err)
	}
	return &FileJournal{f: f, path: path}, nil
}

// truncateTornTail drops everything after the file's last newline.
func truncateTornTail(f *os.File) error {
	end, err := f.Seek(0, 2)
	if err != nil {
		return err
	}
	if end == 0 {
		return nil
	}
	// Scan backwards in chunks for the last newline.
	const chunk = 4096
	pos := end
	for pos > 0 {
		n := int64(chunk)
		if pos < n {
			n = pos
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, pos-n); err != nil {
			return err
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				return f.Truncate(pos - n + i + 1)
			}
		}
		pos -= n
	}
	return f.Truncate(0) // no newline at all: the whole file is one torn line
}

// Path returns the journal's file path.
func (j *FileJournal) Path() string { return j.path }

// Record appends one line. The line is assembled in memory and written
// with a single Write call so a crash cannot interleave two records. A
// failed or short write (disk full) is rolled back by truncating to the
// pre-write offset — otherwise the stranded fragment would sit mid-file
// and merge with the next successful append into one malformed line
// that poisons every later recovery.
func (j *FileJournal) Record(r Record) error {
	if r.Time == "" {
		r.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runner: encode journal record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runner: journal %s is closed", j.path)
	}
	end, serr := j.f.Seek(0, 2) // j.mu serializes writers, so this is the write offset
	if _, err := j.f.Write(b); err != nil {
		if serr == nil {
			j.f.Truncate(end)
		}
		return err
	}
	return nil
}

// Close closes the underlying file; further Records fail.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ReadJournal parses every record in the journal at path. A missing
// file is an empty journal. A final line that does not parse is the
// torn tail of a crash and is skipped; a malformed line anywhere else
// is corruption and is reported.
func ReadJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: read journal %s: %w", path, err)
	}
	defer f.Close()

	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo, badLine := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Op == "" {
			// Tolerated only as the file's final line (the torn tail of
			// a crash); a second bad line, or anything after a bad line,
			// is corruption.
			if badLine != 0 {
				return nil, fmt.Errorf("runner: journal %s: malformed records at lines %d and %d", path, badLine, lineNo)
			}
			badLine = lineNo
			continue
		}
		if badLine != 0 {
			return nil, fmt.Errorf("runner: journal %s: malformed record at line %d", path, badLine)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runner: read journal %s: %w", path, err)
	}
	return recs, nil
}

// PendingJob is a journaled submission that never reached OpDone.
type PendingJob struct {
	Key        string
	Experiment string
	Profile    core.Profile
}

// Pending replays records and returns the jobs to resubmit, in first-
// submission order, deduplicated by result key. A key is pending if its
// last record is a submit or a failure; OpDone retires it (the result
// cache has the table). A later submit of an already-done key does not
// reopen it unless that submit itself lacks a done.
func Pending(recs []Record) []PendingJob {
	type state struct {
		job  PendingJob
		done bool
		seq  int
	}
	byKey := make(map[string]*state)
	seq := 0
	for _, r := range recs {
		switch r.Op {
		case OpSubmit:
			if st, ok := byKey[r.Key]; ok {
				st.done = false
				continue
			}
			if r.Profile == nil || r.Experiment == "" {
				continue // unreplayable submit (old format); skip
			}
			seq++
			byKey[r.Key] = &state{
				job: PendingJob{Key: r.Key, Experiment: r.Experiment, Profile: *r.Profile},
				seq: seq,
			}
		case OpDone:
			if st, ok := byKey[r.Key]; ok {
				st.done = true
			}
		case OpFail:
			// Stays pending: failures are retried on recovery.
		}
	}
	out := make([]PendingJob, 0, len(byKey))
	for _, st := range byKey {
		if !st.done {
			out = append(out, st.job)
		}
	}
	// Deterministic order: first submission first.
	sort.Slice(out, func(i, j int) bool {
		return byKey[out[i].Key].seq < byKey[out[j].Key].seq
	})
	return out
}

// CompactJournal rewrites the journal at path so it contains only the
// first submit record of each still-pending key, atomically (temp +
// rename). Completed jobs need no history — their results live in the
// cache — so without compaction a long-lived daemon's journal grows
// with every job forever and each restart replays all of it. Call this
// before OpenJournal: compacting while a FileJournal holds the file
// open would strand its appends on the renamed-away inode. A missing
// journal is a no-op; a corrupt one is left untouched and reported.
func CompactJournal(path string) (kept int, err error) {
	recs, err := ReadJournal(path)
	if err != nil {
		return 0, err
	}
	if recs == nil {
		return 0, nil
	}
	pendingKeys := make(map[string]bool)
	for _, p := range Pending(recs) {
		pendingKeys[p.Key] = true
	}
	var buf []byte
	for _, r := range recs {
		if r.Op != OpSubmit || !pendingKeys[r.Key] {
			continue
		}
		delete(pendingKeys, r.Key) // keep only the first submit per key
		b, err := json.Marshal(r)
		if err != nil {
			return 0, fmt.Errorf("runner: compact %s: %w", path, err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
		kept++
	}
	if err := fsatomic.WriteFile(path, buf); err != nil {
		return 0, fmt.Errorf("runner: compact %s: %w", path, err)
	}
	return kept, nil
}

// Recover replays the journal at path and resubmits every pending job
// onto s, returning how many were resubmitted. Jobs whose results are
// already cached come back as instant cache hits, so calling Recover is
// idempotent and never re-runs completed work. Submission errors on
// individual jobs (an experiment deregistered between versions, a full
// queue) are skipped and reported in the error after all resubmissions
// are attempted.
func Recover(path string, s *Scheduler) (int, error) {
	recs, err := ReadJournal(path)
	if err != nil {
		return 0, err
	}
	var firstErr error
	n := 0
	for _, p := range Pending(recs) {
		if _, err := s.Submit(p.Experiment, p.Profile); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("runner: recover %s (key %.12s): %w", p.Experiment, p.Key, err)
			}
			continue
		}
		n++
	}
	return n, firstErr
}
