package runner

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/fsatomic"
	"imagebench/internal/jsonl"
)

// The job journal makes the scheduler's work queue crash-safe: every
// submission and completion is appended, one JSON object per line, to a
// plain text file. After a crash or restart, replaying the journal
// yields the set of jobs that were accepted but never finished — those
// are resubmitted — while finished jobs need no replay at all, because
// the result cache (internal/results) already holds their tables on
// disk and a resubmission becomes an instant cache hit.
//
// The append/repair/read mechanics (single-write lines, torn-tail
// truncation on open, one tolerated bad trailing line) live in
// internal/jsonl, shared with the federation coordinator's assignment
// journal; this file owns the record schema and the replay semantics.

// Op is the journal record type.
type Op string

const (
	// OpSubmit records a job accepted by the scheduler (including jobs
	// answered straight from the result cache).
	OpSubmit Op = "submit"
	// OpDone records a successful completion; the result is in the
	// cache by the time this is written.
	OpDone Op = "done"
	// OpFail records a terminal failure. Failed jobs are treated as
	// pending by replay: a failure may be transient (cancellation at
	// shutdown, resource pressure), and re-running a deterministic
	// simulation is always safe.
	OpFail Op = "fail"
)

// Record is one journal line.
type Record struct {
	Time       string        `json:"time"`
	Op         Op            `json:"op"`
	JobID      string        `json:"job"`
	Key        string        `json:"key"`
	Experiment string        `json:"experiment,omitempty"`
	Profile    *core.Profile `json:"profile,omitempty"` // submit records only
	CacheHit   bool          `json:"cacheHit,omitempty"`
	Error      string        `json:"error,omitempty"`
}

// Journal persists job lifecycle records. Implementations must be safe
// for concurrent use; the scheduler writes from every worker.
type Journal interface {
	Record(r Record) error
	Close() error
}

// FileJournal is the append-only JSONL Journal used by imagebenchd.
type FileJournal struct {
	f *jsonl.File
}

// OpenJournal opens (creating if needed) the journal at path for
// appending, repairing a torn trailing line left by a crash.
func OpenJournal(path string) (*FileJournal, error) {
	f, err := jsonl.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	return &FileJournal{f: f}, nil
}

// Path returns the journal's file path.
func (j *FileJournal) Path() string { return j.f.Path() }

// Record appends one line via a single write (see jsonl.File.Append).
func (j *FileJournal) Record(r Record) error {
	if r.Time == "" {
		r.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runner: encode journal record: %w", err)
	}
	return j.f.Append(b)
}

// Close closes the underlying file; further Records fail.
func (j *FileJournal) Close() error { return j.f.Close() }

// ReadJournal parses every record in the journal at path. A missing
// file is an empty journal. A final line that does not parse is the
// torn tail of a crash and is skipped; a malformed line anywhere else
// is corruption and is reported.
func ReadJournal(path string) ([]Record, error) {
	var recs []Record
	err := jsonl.Read(path, func(line []byte) bool {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Op == "" {
			return false
		}
		recs = append(recs, r)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("runner: read journal: %w", err)
	}
	return recs, nil
}

// PendingJob is a journaled submission that never reached OpDone.
type PendingJob struct {
	Key        string
	Experiment string
	Profile    core.Profile
}

// Pending replays records and returns the jobs to resubmit, in first-
// submission order, deduplicated by result key. A key is pending if its
// last record is a submit or a failure; OpDone retires it (the result
// cache has the table). A later submit of an already-done key does not
// reopen it unless that submit itself lacks a done.
func Pending(recs []Record) []PendingJob {
	type state struct {
		job  PendingJob
		done bool
		seq  int
	}
	byKey := make(map[string]*state)
	seq := 0
	for _, r := range recs {
		switch r.Op {
		case OpSubmit:
			if st, ok := byKey[r.Key]; ok {
				st.done = false
				continue
			}
			if r.Profile == nil || r.Experiment == "" {
				continue // unreplayable submit (old format); skip
			}
			seq++
			byKey[r.Key] = &state{
				job: PendingJob{Key: r.Key, Experiment: r.Experiment, Profile: *r.Profile},
				seq: seq,
			}
		case OpDone:
			if st, ok := byKey[r.Key]; ok {
				st.done = true
			}
		case OpFail:
			// Stays pending: failures are retried on recovery.
		}
	}
	out := make([]PendingJob, 0, len(byKey))
	for _, st := range byKey {
		if !st.done {
			out = append(out, st.job)
		}
	}
	// Deterministic order: first submission first.
	sort.Slice(out, func(i, j int) bool {
		return byKey[out[i].Key].seq < byKey[out[j].Key].seq
	})
	return out
}

// CompactJournal rewrites the journal at path so it contains only the
// first submit record of each still-pending key, atomically (temp +
// rename). Completed jobs need no history — their results live in the
// cache — so without compaction a long-lived daemon's journal grows
// with every job forever and each restart replays all of it. Call this
// before OpenJournal: compacting while a FileJournal holds the file
// open would strand its appends on the renamed-away inode. A missing
// journal is a no-op; a corrupt one is left untouched and reported.
func CompactJournal(path string) (kept int, err error) {
	recs, err := ReadJournal(path)
	if err != nil {
		return 0, err
	}
	if recs == nil {
		return 0, nil
	}
	pendingKeys := make(map[string]bool)
	for _, p := range Pending(recs) {
		pendingKeys[p.Key] = true
	}
	var buf []byte
	for _, r := range recs {
		if r.Op != OpSubmit || !pendingKeys[r.Key] {
			continue
		}
		delete(pendingKeys, r.Key) // keep only the first submit per key
		b, err := json.Marshal(r)
		if err != nil {
			return 0, fmt.Errorf("runner: compact %s: %w", path, err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
		kept++
	}
	if err := fsatomic.WriteFile(path, buf); err != nil {
		return 0, fmt.Errorf("runner: compact %s: %w", path, err)
	}
	return kept, nil
}

// Recover replays the journal at path and resubmits every pending job
// onto s, returning how many were resubmitted. Jobs whose results are
// already cached come back as instant cache hits, so calling Recover is
// idempotent and never re-runs completed work. Submission errors on
// individual jobs (an experiment deregistered between versions, a full
// queue) are skipped and reported in the error after all resubmissions
// are attempted.
func Recover(path string, s *Scheduler) (int, error) {
	recs, err := ReadJournal(path)
	if err != nil {
		return 0, err
	}
	var firstErr error
	n := 0
	for _, p := range Pending(recs) {
		if _, err := s.Submit(p.Experiment, p.Profile); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("runner: recover %s (key %.12s): %w", p.Experiment, p.Key, err)
			}
			continue
		}
		n++
	}
	return n, firstErr
}
